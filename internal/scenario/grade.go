package scenario

import (
	"fmt"

	"bristleblocks/internal/core"
	"bristleblocks/internal/ucode"
)

// Design is the design-score half of a verdict, derived from the compile
// statistics the way the paper's designer would read them off the plot:
// how much silicon, how many PLA terms after minimization, how much
// supply current the columns voted for. Score folds the three into one
// comparable number (higher is better); all integer arithmetic, so the
// same chip scores byte-identically on every compile path and pool size.
type Design struct {
	AreaLambda2 int64 `json:"area_lambda2"`
	PLATerms    int   `json:"pla_terms"`
	PowerUA     int   `json:"power_ua"`
	Score       int64 `json:"score"`
}

// DesignScore computes the design half of a verdict from the compile
// statistics. The weights put the three inputs on comparable footing for
// paper-scale chips: area in λ² runs 10⁴..10⁶, PLA terms 10..10², power
// votes 10²..10⁴ µA.
func DesignScore(st core.Stats) Design {
	d := Design{
		AreaLambda2: int64(st.ChipBounds.W()/4) * int64(st.ChipBounds.H()/4),
		PLATerms:    st.PLATerms,
		PowerUA:     st.PowerUA,
	}
	d.Score = 1_000_000_000 / (d.AreaLambda2 + 1000*int64(d.PLATerms) + 100*int64(d.PowerUA) + 1)
	return d
}

// Verdict is one scenario's graded result. GradePercent is functional
// correctness (passed vectors over total, integer percent); Design the
// score derived from the chip statistics. Error marks a scenario the
// grader could not run — an unknown bus or element, a value wider than
// the data word, a word that doesn't assemble — graded 0, never a panic.
// The field order is the byte-identity contract: the same chip and
// scenario marshal to the same JSON on every compile path.
type Verdict struct {
	Scenario     string   `json:"scenario"`
	Chip         string   `json:"chip"`
	Vectors      int      `json:"vectors"`
	Passed       int      `json:"passed"`
	GradePercent int      `json:"grade_percent"`
	Failures     []string `json:"failures,omitempty"`
	Design       Design   `json:"design"`
	Error        string   `json:"error,omitempty"`
}

// Passed100 reports a fully correct run: every vector passed and the
// grader hit no setup error.
func (v *Verdict) Passed100() bool {
	return v.Error == "" && v.Vectors > 0 && v.Passed == v.Vectors
}

// maxFailures bounds the failure list a verdict carries; grading keeps
// counting past it, the report just stops itemizing.
const maxFailures = 8

// Grade runs one scenario on the chip's compiled simulator and grades it.
// Each step is one vector (it passes when all its expectations hold on
// that cycle); each final expect line is one more. Setup problems return
// an error verdict with grade 0 — the graded analogue of a 400 — so a
// malformed scenario can never take down a server worker.
func Grade(chip *core.Chip, sc *Scenario) Verdict {
	v := Verdict{Scenario: sc.Name, Chip: chip.Spec.Name, Vectors: sc.Vectors()}
	v.Design = DesignScore(chip.Stats)
	if sc.Chip != "" && sc.Chip != chip.Spec.Name {
		return v.fail("scenario targets chip %q, compiled chip is %q", sc.Chip, chip.Spec.Name)
	}
	if v.Vectors == 0 {
		return v.fail("scenario has no vectors")
	}
	m, err := chip.NewCompiledSim()
	if err != nil {
		return v.fail("building simulation: %v", err)
	}
	busMask := uint64(1)<<uint(chip.Spec.DataWidth) - 1
	if chip.Spec.DataWidth >= 64 {
		busMask = ^uint64(0)
	}

	for _, a := range sc.Presets {
		mdl, ok := chip.Model(a.Name).(interface{ SetPads(uint64) })
		if !ok {
			return v.fail("line %d: pads target %q is not an I/O port", a.Line, a.Name)
		}
		mdl.SetPads(a.Value)
	}
	for _, a := range sc.Sets {
		mdl, ok := chip.Model(a.Name).(interface{ Set(uint64) })
		if !ok {
			return v.fail("line %d: set target %q is not a stateful element", a.Line, a.Name)
		}
		mdl.Set(a.Value)
	}

	fail := func(format string, args ...any) {
		if len(v.Failures) < maxFailures {
			v.Failures = append(v.Failures, fmt.Sprintf(format, args...))
		}
	}

	for _, st := range sc.Steps {
		words, err := ucode.Assemble(chip.Spec.Microcode, st.Text)
		if err != nil {
			return v.fail("line %d: %v", st.Line, err)
		}
		if len(words) != 1 {
			return v.fail("line %d: step %q assembles to %d words, want 1", st.Line, st.Text, len(words))
		}
		cyc := m.Step(words[0])
		ok := true
		for _, e := range st.Expects {
			var got uint64
			var width string
			switch {
			case hasPhase(e.Target, "phi1."):
				b, found := cyc.Ctl1[e.Target[len("phi1."):]]
				if !found {
					return v.fail("line %d: no control line %q", e.Line, e.Target[len("phi1."):])
				}
				got, width = boolBit(b), "control"
			case hasPhase(e.Target, "phi2."):
				b, found := cyc.Ctl2[e.Target[len("phi2."):]]
				if !found {
					return v.fail("line %d: no control line %q", e.Line, e.Target[len("phi2."):])
				}
				got, width = boolBit(b), "control"
			default:
				g, found := cyc.BusPhi1[e.Target]
				if !found {
					return v.fail("line %d: no bus %q", e.Line, e.Target)
				}
				if e.Value&^busMask != 0 {
					return v.fail("line %d: value %#x does not fit the %d-bit bus %s",
						e.Line, e.Value, chip.Spec.DataWidth, e.Target)
				}
				got, width = g&busMask, "bus"
			}
			care := e.Care
			if width == "bus" {
				care &= busMask
			} else {
				care &= 1
			}
			if got&care != e.Value&care {
				ok = false
				fail("line %d step %q: %s = %#x, want %#x (care %#x)",
					st.Line, st.Text, e.Target, got, e.Value, care)
			}
		}
		if ok {
			v.Passed++
		}
	}

	for _, e := range sc.Finals {
		got, err := readFinal(chip, e)
		if err != nil {
			return v.fail("line %d: %v", e.Line, err)
		}
		if got&e.Care != e.Value&e.Care {
			fail("line %d expect: %s = %#x, want %#x (care %#x)", e.Line, e.Target, got, e.Value, e.Care)
			continue
		}
		v.Passed++
	}

	v.GradePercent = 100 * v.Passed / v.Vectors
	return v
}

// GradeAll grades every scenario in order. A scenario that errors grades
// 0 and does not stop the rest.
func GradeAll(chip *core.Chip, scs []*Scenario) []Verdict {
	out := make([]Verdict, len(scs))
	for i, sc := range scs {
		out[i] = Grade(chip, sc)
	}
	return out
}

// fail finalizes an error verdict: grade 0, the reason in Error.
func (v Verdict) fail(format string, args ...any) Verdict {
	v.Error = fmt.Sprintf(format, args...)
	v.Passed, v.GradePercent, v.Failures = 0, 0, nil
	return v
}

func hasPhase(target, prefix string) bool {
	return len(target) > len(prefix) && target[:len(prefix)] == prefix
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// readFinal resolves one expect-line target against the element models
// after the run: NAME reads a stored word (Value), NAME.pads an I/O
// port's sampled pads.
func readFinal(chip *core.Chip, e Expect) (uint64, error) {
	name, pads := e.Target, false
	if n, found := cutSuffix(name, ".pads"); found {
		name, pads = n, true
	}
	mdl := chip.Model(name)
	if mdl == nil {
		return 0, fmt.Errorf("no element %q", name)
	}
	if pads {
		p, ok := mdl.(interface{ Pads() uint64 })
		if !ok {
			return 0, fmt.Errorf("element %q is not an I/O port", name)
		}
		return p.Pads(), nil
	}
	val, ok := mdl.(interface{ Value() uint64 })
	if !ok {
		return 0, fmt.Errorf("element %q has no readable state", name)
	}
	return val.Value(), nil
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) > len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}
