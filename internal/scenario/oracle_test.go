package scenario

import (
	"context"
	"testing"
)

// TestFromLogicGrades100 is the package's own differential check: a
// scenario derived from the decoder's logic representation must grade
// 100% on the compiled switch-level simulator. Anything less means the
// two representations disagree on some control line.
func TestFromLogicGrades100(t *testing.T) {
	chip := compileTestChip(t)
	sc, err := FromLogic(context.Background(), chip, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sc.Steps); got != 32 {
		t.Fatalf("steps = %d, want 32", got)
	}
	v := Grade(chip, sc)
	if !v.Passed100() {
		t.Fatalf("oracle scenario did not grade 100%%: %+v", v)
	}
}

// TestFromLogicDeterministic pins generation to (chip, seed): the same
// seed must yield the same vector sequence, so CI reruns grade the same
// scenario.
func TestFromLogicDeterministic(t *testing.T) {
	chip := compileTestChip(t)
	a, err := FromLogic(context.Background(), chip, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromLogic(context.Background(), chip, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		if a.Steps[i].Text != b.Steps[i].Text {
			t.Errorf("step %d differs: %q vs %q", i, a.Steps[i].Text, b.Steps[i].Text)
		}
	}
	c, err := FromLogic(context.Background(), chip, 43, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Steps {
		if a.Steps[i].Text != c.Steps[i].Text {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical vector sequences")
	}
}

// TestFromLogicCoreOnly rejects chips without a decoder representation.
func TestFromLogicCoreOnly(t *testing.T) {
	bare := *compileTestChip(t)
	bare.Decoder = nil
	if _, err := FromLogic(context.Background(), &bare, 1, 4); err == nil {
		t.Fatal("want error for a chip with no decoder")
	}
}
