// Package textrep implements the Text representation: "a hierarchically
// organized description of the chip", "similar to a user's manual for the
// chip" (paper, section on representations). A document is a tree of
// sections holding prose, key-value facts, and small tables; the renderer
// numbers the sections and indents the hierarchy, so the same tree can
// describe a whole chip, one core element, or a single cell.
package textrep

import (
	"fmt"
	"strings"
)

// Doc is the root of a manual.
type Doc struct {
	Title    string
	Sections []*Section
}

// Section is one hierarchy level: prose, facts, a table, and subsections.
type Section struct {
	Heading  string
	Prose    []string
	Facts    []Fact
	Table    *Table
	Children []*Section
}

// Fact is one labelled value line.
type Fact struct {
	Label string
	Value string
}

// Table is a small aligned table inside a section.
type Table struct {
	Headers []string
	Rows    [][]string
}

// New returns an empty document.
func New(title string) *Doc { return &Doc{Title: title} }

// Section appends and returns a new top-level section.
func (d *Doc) Section(heading string) *Section {
	s := &Section{Heading: heading}
	d.Sections = append(d.Sections, s)
	return s
}

// Section appends and returns a new subsection.
func (s *Section) Section(heading string) *Section {
	c := &Section{Heading: heading}
	s.Children = append(s.Children, c)
	return c
}

// Text appends a prose paragraph.
func (s *Section) Text(format string, args ...any) *Section {
	s.Prose = append(s.Prose, fmt.Sprintf(format, args...))
	return s
}

// Fact appends one labelled value.
func (s *Section) Fact(label, format string, args ...any) *Section {
	s.Facts = append(s.Facts, Fact{Label: label, Value: fmt.Sprintf(format, args...)})
	return s
}

// NewTable starts the section's table.
func (s *Section) NewTable(headers ...string) *Table {
	s.Table = &Table{Headers: headers}
	return s.Table
}

// Row appends one table row; cells are stringified with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render produces the manual text: numbered headings, indented bodies.
func (d *Doc) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s\n", d.Title, strings.Repeat("=", len(d.Title)))
	for i, s := range d.Sections {
		s.render(&sb, fmt.Sprintf("%d", i+1), 0)
	}
	return sb.String()
}

func (s *Section) render(sb *strings.Builder, num string, depth int) {
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(sb, "\n%s%s %s\n", ind, num, s.Heading)
	body := strings.Repeat("  ", depth+1)
	if len(s.Facts) > 0 {
		w := 0
		for _, f := range s.Facts {
			if len(f.Label) > w {
				w = len(f.Label)
			}
		}
		for _, f := range s.Facts {
			fmt.Fprintf(sb, "%s%-*s  %s\n", body, w, f.Label, f.Value)
		}
	}
	for _, p := range s.Prose {
		fmt.Fprintf(sb, "%s%s\n", body, p)
	}
	if s.Table != nil {
		s.Table.render(sb, body)
	}
	for i, c := range s.Children {
		c.render(sb, fmt.Sprintf("%s.%d", num, i+1), depth+1)
	}
}

func (t *Table) render(sb *strings.Builder, ind string) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		sb.WriteString(ind)
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(sb, "%-*s  ", widths[i], c)
			} else {
				sb.WriteString(c + "  ")
			}
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	dashes := make([]string, len(t.Headers))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", widths[i])
	}
	line(dashes)
	for _, r := range t.Rows {
		line(r)
	}
}
