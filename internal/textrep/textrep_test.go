package textrep

import (
	"strings"
	"testing"
)

func TestRenderNumbering(t *testing.T) {
	d := New("CHIP demo")
	a := d.Section("Overview")
	a.Text("a small chip")
	b := d.Section("Elements")
	b.Section("registers").Fact("count", "%d", 2)
	b.Section("alu").Fact("op", "add")

	out := d.Render()
	for _, want := range []string{"CHIP demo", "1 Overview", "2 Elements", "2.1 registers", "2.2 alu"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Hierarchy: subsection numbering nests under its parent's number.
	if strings.Index(out, "2 Elements") > strings.Index(out, "2.1 registers") {
		t.Error("subsection rendered before parent")
	}
}

func TestFactsAlign(t *testing.T) {
	d := New("t")
	s := d.Section("s")
	s.Fact("a", "1")
	s.Fact("longer", "2")
	out := d.Render()
	if !strings.Contains(out, "a       1") {
		t.Errorf("facts not aligned to widest label:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	d := New("t")
	tab := d.Section("s").NewTable("name", "width")
	tab.Row("x", 100)
	tab.Row("longname", 2)
	out := d.Render()
	if !strings.Contains(out, "name      width") {
		t.Errorf("header not padded to widest cell:\n%s", out)
	}
	if !strings.Contains(out, "--------  -----") {
		t.Errorf("separator missing:\n%s", out)
	}
}

func TestDeepNesting(t *testing.T) {
	d := New("t")
	s := d.Section("a")
	for i := 0; i < 4; i++ {
		s = s.Section("child")
	}
	out := d.Render()
	if !strings.Contains(out, "1.1.1.1.1 child") {
		t.Errorf("deep numbering broken:\n%s", out)
	}
}

func TestEmptyDoc(t *testing.T) {
	out := New("empty").Render()
	if !strings.HasPrefix(out, "empty\n=====\n") {
		t.Errorf("title underline wrong:\n%q", out)
	}
}
