package cdl

import (
	"testing"

	"bristleblocks/internal/cell"
	"bristleblocks/internal/celllib"
	"bristleblocks/internal/drc"
	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/transistor"
)

const sample = `
# a pass transistor in the cell design language
cell pass
size 0 0 48 48
box diff 0 20 48 28
box poly 20 12 28 48
label a 4 24 diff
label b 44 24 diff
label g 24 44 poly
bristle a W 24 diff 8 abut net=a
bristle b E 24 diff 8 abut net=b
bristle g N 24 poly 8 abut net=g
stretchx 8 40
power 0
tx enh g a b
doc pass transistor: connects a to b while g is high
blocklabel PASS switch
endcell
`

func TestParseSample(t *testing.T) {
	cells, err := Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(cells) != 1 {
		t.Fatalf("parsed %d cells", len(cells))
	}
	c := cells[0]
	if c.Name != "pass" || c.Size != geom.R(0, 0, 48, 48) {
		t.Errorf("header wrong: %s %v", c.Name, c.Size)
	}
	if len(c.Layout.Boxes) != 2 || len(c.Bristles) != 3 {
		t.Errorf("geometry wrong: %d boxes, %d bristles", len(c.Layout.Boxes), len(c.Bristles))
	}
	// The parsed cell passes the library invariants.
	if vs := drc.Check(c.Layout, layer.MeadConway(), nil); len(vs) != 0 {
		t.Fatalf("DRC: %v", vs)
	}
	got, err := transistor.Extract(c.Layout)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(c.Netlist) {
		t.Fatalf("netlist mismatch:\n%s", c.Netlist.Diff(got))
	}
}

// TestLibraryCellsRoundTrip exports procedural library cells to CDL and
// reads them back: the library can live in disk files, as the paper
// describes.
func TestLibraryCellsRoundTrip(t *testing.T) {
	reg, err := celllib.RegBit("regbit", "A", "B", "r.ld", "OP=1", "r.rd", "OP=2")
	if err != nil {
		t.Fatal(err)
	}
	for _, orig := range []*cell.Cell{celllib.Inverter("inv"), celllib.PassGate("pg"), reg} {
		text := Format(orig)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: re-Parse: %v\n%s", orig.Name, err, text)
		}
		if len(back) != 1 {
			t.Fatalf("%s: got %d cells", orig.Name, len(back))
		}
		b := back[0]
		if b.Size != orig.Size {
			t.Errorf("%s: size %v vs %v", orig.Name, b.Size, orig.Size)
		}
		if len(b.Bristles) != len(orig.Bristles) {
			t.Errorf("%s: bristles %d vs %d", orig.Name, len(b.Bristles), len(orig.Bristles))
		}
		if !b.Netlist.Equal(orig.Netlist) {
			t.Errorf("%s: netlist mismatch:\n%s", orig.Name, orig.Netlist.Diff(b.Netlist))
		}
		if len(b.Layout.Boxes) != len(orig.Layout.Boxes) || len(b.Layout.Wires) != len(orig.Layout.Wires) {
			t.Errorf("%s: geometry counts differ", orig.Name)
		}
		if Format(b) != text {
			t.Errorf("%s: format not stable", orig.Name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"box diff 0 0 4 4",                                                  // outside a cell
		"cell a\ncell b\nendcell",                                           // nested
		"cell a\nsize 0 0 8 8\n",                                            // unterminated
		"cell a\nendcell",                                                   // no size
		"cell a\nsize 0 0 8 8\nbox bogus 0 0 4 4\nendcell",                  // bad layer
		"cell a\nsize 0 0 8 8\nbox diff 0 0\nendcell",                       // short coords
		"cell a\nsize 0 0 8 8\nwire metal 8 0 0\nendcell",                   // short wire
		"cell a\nsize 0 0 8 8\nbristle x Q 4 poly 8 abut\nendcell",          // bad side
		"cell a\nsize 0 0 8 8\nbristle x W 4 poly 8 funky\nendcell",         // bad flavor
		"cell a\nsize 0 0 8 8\ntx foo a b c\nendcell",                       // bad tx kind
		"cell a\nsize 0 0 8 8\ngate frob x y\nendcell",                      // bad gate
		"cell a\nsize 0 0 8 8\nwhatever\nendcell",                           // unknown directive
		"cell a\nsize 0 0 8 8\nbristle x W 4 poly 8 control net=x\nendcell", // control needs guard
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
