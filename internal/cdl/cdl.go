// Package cdl implements the "standard cell design language": the text
// format in which low-level cells are entered into libraries and "stored
// in disk files and read in as needed, to allow for the use of common cell
// libraries and sharing of data".
//
// A cell definition:
//
//	cell inv
//	size -24 -8 32 120
//	box diff 0 8 8 104
//	wire metal 16  0 0  160 0
//	label in -20 28 poly
//	bristle in W 28 poly 8 abut net=in
//	bristle ld N 36 poly 8 control net=ld guard="OP=1" phase=1
//	stretchy 16 40
//	stretchx 8
//	rail gnd 0 16
//	power 50
//	tx enh in gnd out
//	gate inv out in
//	doc a one-line description
//	endcell
//
// Coordinates are in quarter-lambda quanta, matching geom.Coord.
package cdl

import (
	"fmt"
	"strconv"
	"strings"

	"bristleblocks/internal/cell"
	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/logic"
	"bristleblocks/internal/sticks"
	"bristleblocks/internal/transistor"
)

var sideByName = map[string]cell.Side{
	"N": cell.North, "E": cell.East, "S": cell.South, "W": cell.West,
}

var flavorByName = map[string]cell.Flavor{
	"bus": cell.BusTap, "control": cell.Control, "power": cell.Power,
	"ground": cell.Ground, "clock": cell.Clock, "pad": cell.PadReq,
	"abut": cell.Abut,
}

var gateKinds = map[string]logic.Kind{
	"inv": logic.Inv, "buf": logic.Buf, "nand": logic.Nand, "nor": logic.Nor,
	"and": logic.And, "or": logic.Or, "xor": logic.Xor, "latch": logic.Latch,
}

func layerByName(s string) (layer.Layer, bool) {
	for _, l := range layer.All() {
		if l.Name() == s {
			return l, true
		}
	}
	return 0, false
}

// Parse reads one or more cell definitions from CDL text.
func Parse(src string) ([]*cell.Cell, error) {
	var out []*cell.Cell
	var cur *cell.Cell
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		toks, err := splitQuoted(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if len(toks) == 0 {
			// e.g. a line holding only an empty quoted string
			return nil, fmt.Errorf("line %d: no directive", lineNo+1)
		}
		if toks[0] == "cell" {
			if cur != nil {
				return nil, fmt.Errorf("line %d: nested cell", lineNo+1)
			}
			if len(toks) != 2 {
				return nil, fmt.Errorf("line %d: cell wants a name", lineNo+1)
			}
			cur = cell.New(toks[1], geom.Rect{})
			cur.Sticks = &sticks.Diagram{}
			cur.Netlist = &transistor.Netlist{}
			cur.Logic = &logic.Diagram{}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: %q outside a cell", lineNo+1, toks[0])
		}
		if toks[0] == "endcell" {
			if cur.Size.Empty() {
				return nil, fmt.Errorf("line %d: cell %s has no size", lineNo+1, cur.Name)
			}
			if err := cur.Validate(); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			out = append(out, cur)
			cur = nil
			continue
		}
		if err := applyCellLine(cur, toks); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("unterminated cell %s", cur.Name)
	}
	return out, nil
}

func applyCellLine(c *cell.Cell, toks []string) error {
	switch toks[0] {
	case "size":
		ns, err := coords(toks[1:], 4)
		if err != nil {
			return err
		}
		c.Size = geom.R(ns[0], ns[1], ns[2], ns[3])
	case "box":
		l, ok := layerByName(tok(toks, 1))
		if !ok {
			return fmt.Errorf("unknown layer %q", tok(toks, 1))
		}
		ns, err := coords(toks[2:], 4)
		if err != nil {
			return err
		}
		c.Layout.AddBox(l, geom.R(ns[0], ns[1], ns[2], ns[3]))
	case "wire":
		l, ok := layerByName(tok(toks, 1))
		if !ok {
			return fmt.Errorf("unknown layer %q", tok(toks, 1))
		}
		if len(toks) < 7 || (len(toks)-3)%2 != 0 {
			return fmt.Errorf("wire wants LAYER WIDTH x y x y ...")
		}
		w, err := coord(toks[2])
		if err != nil {
			return err
		}
		ns, err := coords(toks[3:], len(toks)-3)
		if err != nil {
			return err
		}
		pts := make([]geom.Point, 0, len(ns)/2)
		for i := 0; i < len(ns); i += 2 {
			pts = append(pts, geom.Pt(ns[i], ns[i+1]))
		}
		c.Layout.AddWire(l, w, pts...)
	case "label":
		if len(toks) != 5 {
			return fmt.Errorf("label wants TEXT x y LAYER")
		}
		l, ok := layerByName(toks[4])
		if !ok {
			return fmt.Errorf("unknown layer %q", toks[4])
		}
		ns, err := coords(toks[2:4], 2)
		if err != nil {
			return err
		}
		c.Layout.AddLabel(toks[1], geom.Pt(ns[0], ns[1]), l)
	case "bristle":
		if len(toks) < 7 {
			return fmt.Errorf("bristle wants NAME SIDE offset LAYER width FLAVOR [k=v...]")
		}
		side, ok := sideByName[toks[2]]
		if !ok {
			return fmt.Errorf("unknown side %q", toks[2])
		}
		l, ok := layerByName(toks[4])
		if !ok {
			return fmt.Errorf("unknown layer %q", toks[4])
		}
		fl, ok := flavorByName[toks[6]]
		if !ok {
			return fmt.Errorf("unknown flavor %q", toks[6])
		}
		off, err := coord(toks[3])
		if err != nil {
			return err
		}
		w, err := coord(toks[5])
		if err != nil {
			return err
		}
		b := cell.Bristle{Name: toks[1], Side: side, Offset: off, Layer: l, Width: w, Flavor: fl}
		for _, kv := range toks[7:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bristle option %q is not key=value", kv)
			}
			switch k {
			case "net":
				b.Net = v
			case "guard":
				b.Guard = v
			case "phase":
				p, err := strconv.Atoi(v)
				if err != nil {
					return fmt.Errorf("bad phase %q", v)
				}
				b.Phase = p
			case "class":
				b.PadClass = v
			default:
				return fmt.Errorf("unknown bristle option %q", k)
			}
		}
		c.AddBristle(b)
	case "stretchy":
		ns, err := coords(toks[1:], len(toks)-1)
		if err != nil {
			return err
		}
		c.StretchY = append(c.StretchY, ns...)
	case "stretchx":
		ns, err := coords(toks[1:], len(toks)-1)
		if err != nil {
			return err
		}
		c.StretchX = append(c.StretchX, ns...)
	case "rail":
		if len(toks) != 4 {
			return fmt.Errorf("rail wants NET y width")
		}
		y, err1 := coord(toks[2])
		w, err2 := coord(toks[3])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad rail numbers")
		}
		c.Rails = append(c.Rails, cell.PowerRail{Net: toks[1], Y: y, Width: w})
	case "power":
		n, err := strconv.Atoi(tok(toks, 1))
		if err != nil {
			return fmt.Errorf("bad power %q", tok(toks, 1))
		}
		c.PowerUA = n
	case "lambda":
		n, err := strconv.Atoi(tok(toks, 1))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad lambda %q", tok(toks, 1))
		}
		c.LambdaCentimicrons = n
	case "tx":
		if len(toks) != 5 {
			return fmt.Errorf("tx wants enh|dep GATE SRC DRN")
		}
		switch toks[1] {
		case "enh":
			c.Netlist.AddEnh(toks[2], toks[3], toks[4], 0, 0)
		case "dep":
			c.Netlist.AddDep(toks[2], toks[3], toks[4], 0, 0)
		default:
			return fmt.Errorf("unknown transistor kind %q", toks[1])
		}
	case "gate":
		if len(toks) < 4 {
			return fmt.Errorf("gate wants KIND OUT IN...")
		}
		k, ok := gateKinds[toks[1]]
		if !ok {
			return fmt.Errorf("unknown gate kind %q", toks[1])
		}
		c.Logic.AddGate(k, toks[2], toks[3:]...)
	case "doc":
		c.Doc = strings.Join(toks[1:], " ")
	case "simnote":
		c.SimNote = strings.Join(toks[1:], " ")
	case "blocklabel":
		if len(toks) >= 2 {
			c.BlockLabel = toks[1]
		}
		if len(toks) >= 3 {
			c.BlockClass = toks[2]
		}
	default:
		return fmt.Errorf("unknown cell directive %q", toks[0])
	}
	return nil
}

func tok(toks []string, i int) string {
	if i < len(toks) {
		return toks[i]
	}
	return ""
}

func coord(s string) (geom.Coord, error) {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad coordinate %q", s)
	}
	return geom.Coord(n), nil
}

func coords(ss []string, want int) ([]geom.Coord, error) {
	if len(ss) < want || want <= 0 {
		return nil, fmt.Errorf("want %d coordinates, have %d", want, len(ss))
	}
	out := make([]geom.Coord, want)
	for i := 0; i < want; i++ {
		c, err := coord(ss[i])
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

func splitQuoted(line string) ([]string, error) {
	var toks []string
	var cur strings.Builder
	inQ := false
	for _, r := range line {
		switch {
		case r == '"':
			inQ = !inQ
		case (r == ' ' || r == '\t') && !inQ:
			if cur.Len() > 0 {
				toks = append(toks, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if inQ {
		return nil, fmt.Errorf("unterminated quote")
	}
	if cur.Len() > 0 {
		toks = append(toks, cur.String())
	}
	return toks, nil
}

// Format writes a cell back to CDL text (wires in the layout are kept as
// wires; polygons are not emitted — library cells are box/wire based).
func Format(c *cell.Cell) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cell %s\n", c.Name)
	fmt.Fprintf(&sb, "size %d %d %d %d\n", c.Size.MinX, c.Size.MinY, c.Size.MaxX, c.Size.MaxY)
	for _, b := range c.Layout.Boxes {
		fmt.Fprintf(&sb, "box %s %d %d %d %d\n", b.Layer.Name(), b.R.MinX, b.R.MinY, b.R.MaxX, b.R.MaxY)
	}
	for _, w := range c.Layout.Wires {
		fmt.Fprintf(&sb, "wire %s %d", w.Layer.Name(), w.Width)
		for _, p := range w.Path {
			fmt.Fprintf(&sb, " %d %d", p.X, p.Y)
		}
		sb.WriteByte('\n')
	}
	for _, lb := range c.Layout.Labels {
		fmt.Fprintf(&sb, "label %s %d %d %s\n", lb.Text, lb.At.X, lb.At.Y, lb.Layer.Name())
	}
	for _, b := range c.Bristles {
		fmt.Fprintf(&sb, "bristle %s %s %d %s %d %s", b.Name, b.Side, b.Offset, b.Layer.Name(), b.Width, b.Flavor)
		if b.Net != "" {
			fmt.Fprintf(&sb, " net=%s", b.Net)
		}
		if b.Guard != "" {
			fmt.Fprintf(&sb, " guard=%q", b.Guard)
		}
		if b.Phase != 0 {
			fmt.Fprintf(&sb, " phase=%d", b.Phase)
		}
		if b.PadClass != "" {
			fmt.Fprintf(&sb, " class=%s", b.PadClass)
		}
		sb.WriteByte('\n')
	}
	if len(c.StretchY) > 0 {
		fmt.Fprintf(&sb, "stretchy")
		for _, y := range c.StretchY {
			fmt.Fprintf(&sb, " %d", y)
		}
		sb.WriteByte('\n')
	}
	if len(c.StretchX) > 0 {
		fmt.Fprintf(&sb, "stretchx")
		for _, x := range c.StretchX {
			fmt.Fprintf(&sb, " %d", x)
		}
		sb.WriteByte('\n')
	}
	for _, r := range c.Rails {
		fmt.Fprintf(&sb, "rail %s %d %d\n", r.Net, r.Y, r.Width)
	}
	if c.PowerUA != 0 {
		fmt.Fprintf(&sb, "power %d\n", c.PowerUA)
	}
	if c.LambdaCentimicrons != 0 {
		fmt.Fprintf(&sb, "lambda %d\n", c.LambdaCentimicrons)
	}
	if c.Netlist != nil {
		for _, t := range c.Netlist.Txs {
			fmt.Fprintf(&sb, "tx %s %s %s %s\n", t.Kind, t.Gate, t.Source, t.Drain)
		}
	}
	if c.Logic != nil {
		for _, g := range c.Logic.Gates {
			fmt.Fprintf(&sb, "gate %s %s %s\n", strings.ToLower(g.Kind.String()), g.Output, strings.Join(g.Inputs, " "))
		}
	}
	if c.Doc != "" {
		fmt.Fprintf(&sb, "doc %s\n", c.Doc)
	}
	if c.SimNote != "" {
		fmt.Fprintf(&sb, "simnote %s\n", c.SimNote)
	}
	if c.BlockLabel != "" {
		fmt.Fprintf(&sb, "blocklabel %s %s\n", c.BlockLabel, c.BlockClass)
	}
	fmt.Fprintf(&sb, "endcell\n")
	return sb.String()
}
