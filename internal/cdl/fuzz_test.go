package cdl

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseCDL feeds arbitrary text into the cell-design-language parser.
// The parser must never panic, and every cell it accepts must survive a
// Format -> Parse round trip: Format is the canonical rendering, so
// re-parsing it must yield one cell that renders identically.
//
// Seed corpus: testdata/corpus/cdl/* (library-style cell sources plus
// crafted edge cases), added verbatim.
func FuzzParseCDL(f *testing.F) {
	dir := filepath.Join("..", "..", "testdata", "corpus", "cdl")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("seed corpus missing: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		cells, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, c := range cells {
			out := Format(c)
			re, err := Parse(out)
			if err != nil {
				t.Fatalf("cell %s: Format produced unparseable text: %v\n%s", c.Name, err, out)
			}
			if len(re) != 1 {
				t.Fatalf("cell %s: round trip yielded %d cells", c.Name, len(re))
			}
			if got := Format(re[0]); got != out {
				t.Fatalf("cell %s: round trip did not converge:\n%s\nvs\n%s", c.Name, out, got)
			}
		}
	})
}
