package drc

import (
	"testing"
	"testing/quick"

	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/mask"
)

// TestQuickSpacingSoundAndComplete: for any two legal-width metal rects at
// a random horizontal gap, the checker flags the pair exactly when the gap
// is positive and below the rule (touching rects merge into one shape; a
// gap at or above the rule is legal).
func TestQuickSpacingSoundAndComplete(t *testing.T) {
	rules := layer.MeadConway()
	minSpace := rules.MinSpace[layer.Metal]
	f := func(gapSeed uint8, w1, w2, h uint8) bool {
		gap := geom.Coord(gapSeed % 24) // 0..23 quanta (rule is 12)
		a := geom.R(0, 0, geom.L(3)+geom.Coord(w1%8), geom.L(3)+geom.Coord(h%8))
		bx := a.MaxX + gap
		b := geom.R(bx, 0, bx+geom.L(3)+geom.Coord(w2%8), a.MaxY)

		c := mask.NewCell("t")
		c.AddBox(layer.Metal, a)
		c.AddBox(layer.Metal, b)
		vs := Check(c, rules, nil)
		violated := len(vs) > 0
		shouldViolate := gap > 0 && gap < minSpace
		if violated != shouldViolate {
			t.Logf("gap=%d violated=%v want %v (%v)", gap, violated, shouldViolate, vs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWidthSoundAndComplete: an isolated metal rect is flagged exactly
// when one of its dimensions is below the width rule.
func TestQuickWidthSoundAndComplete(t *testing.T) {
	rules := layer.MeadConway()
	minW := rules.MinWidth[layer.Metal]
	f := func(w, h uint8) bool {
		rw := geom.Coord(w%24) + 1
		rh := geom.Coord(h%24) + 1
		c := mask.NewCell("t")
		c.AddBox(layer.Metal, geom.R(0, 0, rw, rh))
		vs := Check(c, rules, nil)
		violated := len(vs) > 0
		shouldViolate := rw < minW || rh < minW
		if violated != shouldViolate {
			t.Logf("w=%d h=%d violated=%v want %v (%v)", rw, rh, violated, shouldViolate, vs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOverlapNeverSpacingViolation: overlapping or abutting same-net
// shapes are one electrical shape; no spacing violation may fire no matter
// how they overlap.
func TestQuickOverlapNeverSpacingViolation(t *testing.T) {
	rules := layer.MeadConway()
	f := func(dx, dy uint8) bool {
		a := geom.R(0, 0, geom.L(6), geom.L(6))
		// Offset keeps the second rect overlapping or sharing an edge.
		ox := geom.Coord(dx % uint8(geom.L(6)+1))
		oy := geom.Coord(dy % uint8(geom.L(6)+1))
		b := a.Translate(geom.Pt(ox, oy))
		c := mask.NewCell("t")
		c.AddBox(layer.Metal, a)
		c.AddBox(layer.Metal, b)
		vs := Check(c, rules, nil)
		if len(vs) != 0 {
			t.Logf("offset (%d,%d): %v", ox, oy, vs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
