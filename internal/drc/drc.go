// Package drc is the design-rule checker. It verifies flattened mask
// geometry against the Mead & Conway lambda rules: minimum widths, minimum
// spacings (including notches), poly/diffusion separation, transistor gate
// and diffusion extensions, contact surrounds, and implant coverage of
// depletion gates.
//
// The paper's interface discipline is what makes checking tractable:
// "boundary conditions like these allow design rule checking to be
// performed on individual cells as the cells are designed, rather than on
// fully instantiated artwork". The library runs Check on every leaf cell
// (at several stretch amounts) and on assembled chips.
package drc

import (
	"fmt"
	"sort"

	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/mask"
)

// Violation is one design-rule failure.
type Violation struct {
	Rule   string
	Layer  layer.Layer
	At     geom.Rect
	Detail string
}

// String renders the violation with its rule, layers, and location.
func (v Violation) String() string {
	return fmt.Sprintf("%s on %s at %v: %s", v.Rule, v.Layer, v.At, v.Detail)
}

// Options tunes a check run.
type Options struct {
	// MaxViolations stops the check after this many findings (0 = 1000).
	MaxViolations int
	// SkipLayers disables all checks on the given layers.
	SkipLayers []layer.Layer
}

// Check verifies the flattened hierarchy under c against rules and returns
// all violations found (up to the option cap).
func Check(c *mask.Cell, rules *layer.Rules, opts *Options) []Violation {
	if opts == nil {
		opts = &Options{}
	}
	maxV := opts.MaxViolations
	if maxV <= 0 {
		maxV = 1000
	}
	skip := make(map[layer.Layer]bool)
	for _, l := range opts.SkipLayers {
		skip[l] = true
	}

	byLayer := make(map[layer.Layer][]geom.Rect)
	c.Flatten(func(l layer.Layer, r geom.Rect) {
		if !r.Empty() {
			byLayer[l] = append(byLayer[l], r)
		}
	})

	ck := &checker{rules: rules, byLayer: byLayer, max: maxV}

	for l := layer.Layer(0); l < layer.NumLayers; l++ {
		if skip[l] {
			continue
		}
		ck.checkWidth(l)
		ck.checkSpacing(l)
	}
	if !skip[layer.Poly] && !skip[layer.Diff] {
		ck.checkPolyDiffSeparation()
		ck.checkTransistors()
	}
	if !skip[layer.Contact] {
		ck.checkContacts()
	}
	return ck.out
}

// Clean reports whether the layout has no violations.
func Clean(c *mask.Cell, rules *layer.Rules) bool {
	return len(Check(c, rules, &Options{MaxViolations: 1})) == 0
}

type checker struct {
	rules   *layer.Rules
	byLayer map[layer.Layer][]geom.Rect
	out     []Violation
	max     int
}

func (ck *checker) add(v Violation) {
	if len(ck.out) < ck.max {
		ck.out = append(ck.out, v)
	}
}

func (ck *checker) full() bool { return len(ck.out) >= ck.max }

// covered reports whether r is entirely covered by the union of rs.
func covered(r geom.Rect, rs []geom.Rect) bool {
	if r.Empty() {
		return true
	}
	var parts []geom.Rect
	for _, s := range rs {
		if x := s.Intersect(r); !x.Empty() {
			parts = append(parts, x)
		}
	}
	return geom.UnionArea(parts) == r.Area()
}

// checkWidth flags geometry thinner than the layer's minimum width. A rect
// thinner than the rule on one axis passes if inflating it to the rule on
// that axis (centered) stays inside the layer's union — i.e. the drawn
// shape is locally at least minWidth wide even though this fragment is
// thin (polygon slab decomposition produces such fragments).
func (ck *checker) checkWidth(l layer.Layer) {
	w := ck.rules.MinWidth[l]
	rects := ck.byLayer[l]
	for _, r := range rects {
		if ck.full() {
			return
		}
		thinX := r.W() < w
		thinY := r.H() < w
		if !thinX && !thinY {
			continue
		}
		grown := r
		if thinX {
			pad := w - r.W()
			grown.MinX -= pad / 2
			grown.MaxX += pad - pad/2
		}
		if thinY {
			pad := w - r.H()
			grown.MinY -= pad / 2
			grown.MaxY += pad - pad/2
		}
		if !covered(grown, rects) {
			ck.add(Violation{
				Rule: "min-width", Layer: l, At: r,
				Detail: fmt.Sprintf("feature %dx%d quanta, rule %d", r.W(), r.H(), w),
			})
		}
	}
}

// checkSpacing flags pairs of same-layer rects separated by a positive gap
// smaller than the rule (touching geometry merges and is fine). This also
// catches notches inside a single net, matching the lambda rules. A pair
// whose gap region is completely filled by other same-layer geometry (a
// bridging rect) is not a violation — the drawn shape has no gap there.
func (ck *checker) checkSpacing(l layer.Layer) {
	s := ck.rules.MinSpace[l]
	rects := append([]geom.Rect(nil), ck.byLayer[l]...)
	sort.Slice(rects, func(i, j int) bool { return rects[i].MinX < rects[j].MinX })
	for i := 0; i < len(rects); i++ {
		if ck.full() {
			return
		}
		for j := i + 1; j < len(rects); j++ {
			if rects[j].MinX-rects[i].MaxX >= s {
				break
			}
			sep := rects[i].Separation(rects[j])
			if sep > 0 && sep < s {
				if covered(gapRegion(rects[i], rects[j]), rects) {
					continue
				}
				ck.add(Violation{
					Rule: "min-space", Layer: l, At: rects[i].Union(rects[j]),
					Detail: fmt.Sprintf("gap %d, rule %d", sep, s),
				})
			}
		}
	}
}

// gapRegion returns the empty space between two disjoint rects: the span
// between their facing edges, limited to the overlap of their projections
// (or the corner-to-corner region for diagonal pairs).
func gapRegion(a, b geom.Rect) geom.Rect {
	var g geom.Rect
	switch {
	case b.MinX >= a.MaxX:
		g.MinX, g.MaxX = a.MaxX, b.MinX
	case a.MinX >= b.MaxX:
		g.MinX, g.MaxX = b.MaxX, a.MinX
	default:
		g.MinX = maxC(a.MinX, b.MinX)
		g.MaxX = minC(a.MaxX, b.MaxX)
	}
	switch {
	case b.MinY >= a.MaxY:
		g.MinY, g.MaxY = a.MaxY, b.MinY
	case a.MinY >= b.MaxY:
		g.MinY, g.MaxY = b.MaxY, a.MinY
	default:
		g.MinY = maxC(a.MinY, b.MinY)
		g.MaxY = minC(a.MaxY, b.MaxY)
	}
	return g
}

func maxC(a, b geom.Coord) geom.Coord {
	if a > b {
		return a
	}
	return b
}

func minC(a, b geom.Coord) geom.Coord {
	if a < b {
		return a
	}
	return b
}

// checkPolyDiffSeparation flags unrelated poly within PolyDiffSpace of
// diffusion (overlap is a transistor or buried contact and is handled by
// checkTransistors).
func (ck *checker) checkPolyDiffSeparation() {
	rule := ck.rules.PolyDiffSpace
	diff := ck.byLayer[layer.Diff]
	for _, p := range ck.byLayer[layer.Poly] {
		if ck.full() {
			return
		}
		for _, d := range diff {
			sep := p.Separation(d)
			if sep > 0 && sep < rule && !p.Overlaps(d) {
				ck.add(Violation{
					Rule: "poly-diff-space", Layer: layer.Poly, At: p.Union(d),
					Detail: fmt.Sprintf("gap %d, rule %d", sep, rule),
				})
			}
		}
	}
}

// gateRegions computes channel rectangles: poly over diff, excluding buried
// contact areas.
func (ck *checker) gateRegions() []geom.Rect {
	var gates []geom.Rect
	buried := ck.byLayer[layer.Buried]
	for _, p := range ck.byLayer[layer.Poly] {
		for _, d := range ck.byLayer[layer.Diff] {
			g := p.Intersect(d)
			if g.Empty() {
				continue
			}
			gates = append(gates, subtract(g, buried)...)
		}
	}
	return gates
}

// checkTransistors verifies gate extension (poly past the channel),
// diffusion extension (source/drain past the channel), and implant
// surround of depletion gates.
func (ck *checker) checkTransistors() {
	polys := ck.byLayer[layer.Poly]
	diffs := ck.byLayer[layer.Diff]
	implants := ck.byLayer[layer.Implant]
	for _, g := range ck.gateRegions() {
		if ck.full() {
			return
		}
		// Channel direction: the sides where diffusion continues carry
		// current; the perpendicular sides need poly overhang.
		left := geom.Rect{MinX: g.MinX - 1, MinY: g.MinY, MaxX: g.MinX, MaxY: g.MaxY}
		right := geom.Rect{MinX: g.MaxX, MinY: g.MinY, MaxX: g.MaxX + 1, MaxY: g.MaxY}
		bottom := geom.Rect{MinX: g.MinX, MinY: g.MinY - 1, MaxX: g.MaxX, MaxY: g.MinY}
		top := geom.Rect{MinX: g.MinX, MinY: g.MaxY, MaxX: g.MaxX, MaxY: g.MaxY + 1}
		diffLR := covered(left, diffs) && covered(right, diffs)
		diffTB := covered(bottom, diffs) && covered(top, diffs)

		ext := ck.rules.GateExtension
		dext := ck.rules.DiffGateExtension
		switch {
		case diffLR:
			// Current flows in x; poly must overhang in y, diff extend in x.
			if !covered(geom.Rect{MinX: g.MinX, MinY: g.MinY - ext, MaxX: g.MaxX, MaxY: g.MaxY + ext}, polys) {
				ck.add(Violation{Rule: "gate-extension", Layer: layer.Poly, At: g,
					Detail: fmt.Sprintf("poly must extend %d past channel", ext)})
			}
			if !covered(geom.Rect{MinX: g.MinX - dext, MinY: g.MinY, MaxX: g.MaxX + dext, MaxY: g.MaxY}, diffs) {
				ck.add(Violation{Rule: "diff-extension", Layer: layer.Diff, At: g,
					Detail: fmt.Sprintf("diffusion must extend %d past channel", dext)})
			}
		case diffTB:
			if !covered(geom.Rect{MinX: g.MinX - ext, MinY: g.MinY, MaxX: g.MaxX + ext, MaxY: g.MaxY}, polys) {
				ck.add(Violation{Rule: "gate-extension", Layer: layer.Poly, At: g,
					Detail: fmt.Sprintf("poly must extend %d past channel", ext)})
			}
			if !covered(geom.Rect{MinX: g.MinX, MinY: g.MinY - dext, MaxX: g.MaxX, MaxY: g.MaxY + dext}, diffs) {
				ck.add(Violation{Rule: "diff-extension", Layer: layer.Diff, At: g,
					Detail: fmt.Sprintf("diffusion must extend %d past channel", dext)})
			}
		default:
			ck.add(Violation{Rule: "malformed-gate", Layer: layer.Poly, At: g,
				Detail: "channel has no opposing source/drain diffusion"})
		}

		// Depletion gates must be surrounded by implant.
		touchesImplant := false
		for _, im := range implants {
			if im.Overlaps(g) {
				touchesImplant = true
				break
			}
		}
		if touchesImplant {
			want := g.Inset(-ck.rules.ImplantGateSurround)
			if !covered(want, implants) {
				ck.add(Violation{Rule: "implant-surround", Layer: layer.Implant, At: g,
					Detail: fmt.Sprintf("implant must surround depletion gate by %d", ck.rules.ImplantGateSurround)})
			}
		}
	}
}

// checkContacts verifies contact cuts connect metal to exactly the layers
// below with the required surround on every connected layer.
func (ck *checker) checkContacts() {
	sur := ck.rules.ContactSurround
	metal := ck.byLayer[layer.Metal]
	poly := ck.byLayer[layer.Poly]
	diff := ck.byLayer[layer.Diff]
	for _, cut := range ck.byLayer[layer.Contact] {
		if ck.full() {
			return
		}
		want := cut.Inset(-sur)
		if !covered(want, metal) {
			ck.add(Violation{Rule: "contact-metal-surround", Layer: layer.Contact, At: cut,
				Detail: fmt.Sprintf("metal must surround contact by %d", sur)})
		}
		onPoly := covered(want, poly)
		onDiff := covered(want, diff)
		if !onPoly && !onDiff {
			ck.add(Violation{Rule: "contact-lands-nowhere", Layer: layer.Contact, At: cut,
				Detail: "contact must be surrounded by poly or diffusion"})
		}
	}
	// Buried contacts must lie entirely within both poly and diffusion (by
	// library convention the buried cut exactly covers the poly∩diff
	// overlap, so no channel ring is left around it).
	for _, cut := range ck.byLayer[layer.Buried] {
		if ck.full() {
			return
		}
		if !covered(cut, poly) || !covered(cut, diff) {
			ck.add(Violation{Rule: "buried-surround", Layer: layer.Buried, At: cut,
				Detail: "buried contact must lie within poly and diffusion"})
		}
	}
}

// subtract returns r minus all cuts.
func subtract(r geom.Rect, cuts []geom.Rect) []geom.Rect {
	pieces := []geom.Rect{r}
	for _, cut := range cuts {
		var next []geom.Rect
		for _, p := range pieces {
			x := p.Intersect(cut)
			if x.Empty() {
				next = append(next, p)
				continue
			}
			for _, cand := range []geom.Rect{
				{MinX: p.MinX, MinY: p.MinY, MaxX: x.MinX, MaxY: p.MaxY},
				{MinX: x.MaxX, MinY: p.MinY, MaxX: p.MaxX, MaxY: p.MaxY},
				{MinX: x.MinX, MinY: p.MinY, MaxX: x.MaxX, MaxY: x.MinY},
				{MinX: x.MinX, MinY: x.MaxY, MaxX: x.MaxX, MaxY: p.MaxY},
			} {
				if !cand.Empty() {
					next = append(next, cand)
				}
			}
		}
		pieces = next
		if len(pieces) == 0 {
			break
		}
	}
	return pieces
}
