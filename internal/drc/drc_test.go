package drc

import (
	"strings"
	"testing"

	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/mask"
)

func rules() *layer.Rules { return layer.MeadConway() }

func violationRules(vs []Violation) string {
	var names []string
	for _, v := range vs {
		names = append(names, v.Rule)
	}
	return strings.Join(names, ",")
}

func TestCleanEmptyCell(t *testing.T) {
	c := mask.NewCell("empty")
	if vs := Check(c, rules(), nil); len(vs) != 0 {
		t.Errorf("empty cell has violations: %v", vs)
	}
	if !Clean(c, rules()) {
		t.Error("Clean wrong")
	}
}

func TestWidthViolation(t *testing.T) {
	c := mask.NewCell("thin")
	c.AddBox(layer.Metal, geom.R(0, 0, 8, 100)) // 2λ metal: rule is 3λ
	vs := Check(c, rules(), nil)
	if len(vs) != 1 || vs[0].Rule != "min-width" {
		t.Errorf("want one min-width violation, got %v", vs)
	}
	// 3λ metal is fine.
	c2 := mask.NewCell("ok")
	c2.AddBox(layer.Metal, geom.R(0, 0, 12, 100))
	if vs := Check(c2, rules(), nil); len(vs) != 0 {
		t.Errorf("legal metal flagged: %v", vs)
	}
}

func TestWidthFragmentsOfWideShapeAreFine(t *testing.T) {
	// An L-shaped polygon's slab decomposition produces fragments, but the
	// drawn shape is everywhere >= 3λ; no violation.
	c := mask.NewCell("L")
	if err := c.AddPoly(layer.Metal, geom.Polygon{
		geom.Pt(0, 0), geom.Pt(48, 0), geom.Pt(48, 12), geom.Pt(12, 12),
		geom.Pt(12, 48), geom.Pt(0, 48),
	}); err != nil {
		t.Fatal(err)
	}
	if vs := Check(c, rules(), nil); len(vs) != 0 {
		t.Errorf("L-shape flagged: %v", vs)
	}
}

func TestSpacingViolationAndNotch(t *testing.T) {
	c := mask.NewCell("close")
	c.AddBox(layer.Metal, geom.R(0, 0, 12, 12))
	c.AddBox(layer.Metal, geom.R(16, 0, 28, 12)) // gap 4 = 1λ < 3λ
	vs := Check(c, rules(), nil)
	if len(vs) != 1 || vs[0].Rule != "min-space" {
		t.Errorf("want min-space, got %v", vs)
	}
	// Touching boxes are one shape: no violation.
	c2 := mask.NewCell("abut")
	c2.AddBox(layer.Metal, geom.R(0, 0, 12, 12))
	c2.AddBox(layer.Metal, geom.R(12, 0, 24, 12))
	if vs := Check(c2, rules(), nil); len(vs) != 0 {
		t.Errorf("abutting flagged: %v", vs)
	}
	// A notch inside one net is still illegal.
	c3 := mask.NewCell("notch")
	c3.AddBox(layer.Metal, geom.R(0, 0, 40, 12))
	c3.AddBox(layer.Metal, geom.R(0, 12, 12, 40))
	c3.AddBox(layer.Metal, geom.R(16, 12, 40, 40)) // 1λ notch between the arms
	vs = Check(c3, rules(), nil)
	found := false
	for _, v := range vs {
		if v.Rule == "min-space" {
			found = true
		}
	}
	if !found {
		t.Errorf("notch not flagged: %v", vs)
	}
	// Diagonal separation must satisfy the max-axis rule.
	c4 := mask.NewCell("diag")
	c4.AddBox(layer.Metal, geom.R(0, 0, 12, 12))
	c4.AddBox(layer.Metal, geom.R(16, 16, 28, 28)) // dx=dy=4 -> sep 4 < 12
	if vs := Check(c4, rules(), nil); len(vs) != 1 {
		t.Errorf("diagonal spacing: %v", vs)
	}
}

func TestPolyDiffSeparation(t *testing.T) {
	c := mask.NewCell("pd")
	c.AddBox(layer.Diff, geom.R(0, 0, 8, 40))
	c.AddBox(layer.Poly, geom.R(10, 0, 18, 40)) // gap 2 < 1λ=4
	vs := Check(c, rules(), nil)
	if violationRules(vs) != "poly-diff-space" {
		t.Errorf("got %v", vs)
	}
	c2 := mask.NewCell("ok")
	c2.AddBox(layer.Diff, geom.R(0, 0, 8, 40))
	c2.AddBox(layer.Poly, geom.R(12, 0, 20, 40)) // gap 4 = 1λ
	if vs := Check(c2, rules(), nil); len(vs) != 0 {
		t.Errorf("legal separation flagged: %v", vs)
	}
}

// legalTransistor draws a fully legal enhancement transistor: horizontal
// diff, vertical poly with 2λ overhang, diffusion continuing 2λ+ on both
// sides.
func legalTransistor(c *mask.Cell, x, y geom.Coord) {
	c.AddBox(layer.Diff, geom.R(x, y, x+40, y+8))
	c.AddBox(layer.Poly, geom.R(x+16, y-8, x+24, y+16))
}

func TestLegalTransistorPasses(t *testing.T) {
	c := mask.NewCell("tx")
	legalTransistor(c, 0, 0)
	if vs := Check(c, rules(), nil); len(vs) != 0 {
		t.Errorf("legal transistor flagged: %v", vs)
	}
}

func TestGateExtensionViolation(t *testing.T) {
	c := mask.NewCell("short-poly")
	c.AddBox(layer.Diff, geom.R(0, 0, 40, 8))
	c.AddBox(layer.Poly, geom.R(16, -4, 24, 12)) // only 1λ overhang
	vs := Check(c, rules(), nil)
	if !strings.Contains(violationRules(vs), "gate-extension") {
		t.Errorf("got %v", vs)
	}
}

func TestDiffExtensionViolation(t *testing.T) {
	c := mask.NewCell("short-diff")
	c.AddBox(layer.Diff, geom.R(12, 0, 28, 8)) // only 1λ of S/D on each side
	c.AddBox(layer.Poly, geom.R(16, -8, 24, 16))
	vs := Check(c, rules(), nil)
	if !strings.Contains(violationRules(vs), "diff-extension") {
		t.Errorf("got %v", vs)
	}
}

func TestMalformedGate(t *testing.T) {
	c := mask.NewCell("covered")
	c.AddBox(layer.Diff, geom.R(0, 0, 8, 8))
	c.AddBox(layer.Poly, geom.R(-8, -8, 16, 16)) // poly swallows the island
	vs := Check(c, rules(), nil)
	if !strings.Contains(violationRules(vs), "malformed-gate") {
		t.Errorf("got %v", vs)
	}
}

func TestImplantSurround(t *testing.T) {
	c := mask.NewCell("dep")
	legalTransistor(c, 0, 0)
	c.AddBox(layer.Implant, geom.R(10, -14, 30, 14)) // full 1.5λ surround
	if vs := Check(c, rules(), nil); len(vs) != 0 {
		t.Errorf("legal depletion flagged: %v", vs)
	}
	c2 := mask.NewCell("dep-short")
	legalTransistor(c2, 0, 0)
	c2.AddBox(layer.Implant, geom.R(16, 0, 24, 8)) // no surround at all
	vs := Check(c2, rules(), nil)
	if !strings.Contains(violationRules(vs), "implant-surround") {
		t.Errorf("got %v", vs)
	}
}

func TestContactRules(t *testing.T) {
	// Legal metal-to-diff contact: 2λ cut, 1λ surround on both layers.
	c := mask.NewCell("ct")
	c.AddBox(layer.Diff, geom.R(0, 0, 16, 16))
	c.AddBox(layer.Metal, geom.R(0, 0, 16, 16))
	c.AddBox(layer.Contact, geom.R(4, 4, 12, 12))
	if vs := Check(c, rules(), nil); len(vs) != 0 {
		t.Errorf("legal contact flagged: %v", vs)
	}
	// Contact with no landing layer.
	c2 := mask.NewCell("float")
	c2.AddBox(layer.Metal, geom.R(0, 0, 16, 16))
	c2.AddBox(layer.Contact, geom.R(4, 4, 12, 12))
	vs := Check(c2, rules(), nil)
	if !strings.Contains(violationRules(vs), "contact-lands-nowhere") {
		t.Errorf("got %v", vs)
	}
	// Contact hanging off the metal.
	c3 := mask.NewCell("hang")
	c3.AddBox(layer.Diff, geom.R(0, 0, 16, 16))
	c3.AddBox(layer.Metal, geom.R(0, 0, 16, 12))
	c3.AddBox(layer.Contact, geom.R(4, 4, 12, 12))
	vs = Check(c3, rules(), nil)
	if !strings.Contains(violationRules(vs), "contact-metal-surround") {
		t.Errorf("got %v", vs)
	}
}

func TestBuriedSurround(t *testing.T) {
	// Legal: poly strip ends on a diffusion strip; the buried cut exactly
	// covers the overlap, so there is no channel and both layers contain
	// the cut.
	c := mask.NewCell("buried")
	c.AddBox(layer.Diff, geom.R(0, 0, 16, 40))
	c.AddBox(layer.Poly, geom.R(0, 0, 40, 16))
	c.AddBox(layer.Buried, geom.R(0, 0, 16, 16))
	if vs := Check(c, rules(), nil); len(vs) != 0 {
		t.Errorf("legal buried flagged: %v", vs)
	}
	// Illegal: the cut sticks out of the poly.
	c2 := mask.NewCell("bad")
	c2.AddBox(layer.Diff, geom.R(0, 0, 16, 40))
	c2.AddBox(layer.Poly, geom.R(0, 0, 16, 16))
	c2.AddBox(layer.Buried, geom.R(0, 0, 16, 24))
	vs := Check(c2, rules(), nil)
	if !strings.Contains(violationRules(vs), "buried-surround") {
		t.Errorf("got %v", vs)
	}
}

func TestMaxViolationsCap(t *testing.T) {
	c := mask.NewCell("many")
	for i := 0; i < 20; i++ {
		c.AddBox(layer.Metal, geom.RectWH(geom.Coord(i)*100, 0, 4, 4)) // each too small
	}
	vs := Check(c, rules(), &Options{MaxViolations: 5})
	if len(vs) != 5 {
		t.Errorf("cap not applied: %d", len(vs))
	}
}

func TestSkipLayers(t *testing.T) {
	c := mask.NewCell("skip")
	c.AddBox(layer.Metal, geom.R(0, 0, 4, 4))
	vs := Check(c, rules(), &Options{SkipLayers: []layer.Layer{layer.Metal}})
	if len(vs) != 0 {
		t.Errorf("skipped layer still checked: %v", vs)
	}
}

func TestHierarchicalCheck(t *testing.T) {
	// Two legal cells placed too close create a spacing violation only
	// visible after flattening.
	leaf := mask.NewCell("leaf")
	leaf.AddBox(layer.Metal, geom.R(0, 0, 12, 12))
	top := mask.NewCell("top")
	top.Place(leaf, geom.Translate(0, 0))
	top.Place(leaf, geom.Translate(16, 0)) // 1λ apart
	vs := Check(top, rules(), nil)
	if violationRules(vs) != "min-space" {
		t.Errorf("got %v", vs)
	}
}
