package cell

import (
	"testing"

	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/logic"
	"bristleblocks/internal/sticks"
	"bristleblocks/internal/transistor"
)

func TestSide(t *testing.T) {
	if !North.Horizontal() || !South.Horizontal() {
		t.Error("N/S should be horizontal")
	}
	if East.Horizontal() || West.Horizontal() {
		t.Error("E/W should not be horizontal")
	}
	if North.String() != "N" || West.String() != "W" {
		t.Error("side names wrong")
	}
}

func TestBristlePosition(t *testing.T) {
	size := geom.R(0, 0, 100, 40)
	cases := []struct {
		b    Bristle
		want geom.Point
	}{
		{Bristle{Side: North, Offset: 30}, geom.Pt(30, 40)},
		{Bristle{Side: South, Offset: 30}, geom.Pt(30, 0)},
		{Bristle{Side: East, Offset: 12}, geom.Pt(100, 12)},
		{Bristle{Side: West, Offset: 12}, geom.Pt(0, 12)},
	}
	for _, c := range cases {
		if got := c.b.Position(size); got != c.want {
			t.Errorf("%v position = %v, want %v", c.b.Side, got, c.want)
		}
	}
}

func TestBristlesByAndFind(t *testing.T) {
	c := New("t", geom.R(0, 0, 100, 100))
	c.AddBristle(Bristle{Name: "b2", Side: West, Offset: 40, Flavor: BusTap, Net: "B"})
	c.AddBristle(Bristle{Name: "ctl", Side: North, Offset: 10, Flavor: Control, Guard: "OP=1"})
	c.AddBristle(Bristle{Name: "b1", Side: West, Offset: 10, Flavor: BusTap, Net: "A"})

	taps := c.BristlesBy(BusTap)
	if len(taps) != 2 || taps[0].Name != "b1" || taps[1].Name != "b2" {
		t.Errorf("BristlesBy order wrong: %+v", taps)
	}
	if b, ok := c.FindBristle("ctl"); !ok || b.Guard != "OP=1" {
		t.Error("FindBristle failed")
	}
	if _, ok := c.FindBristle("nope"); ok {
		t.Error("FindBristle should miss")
	}
}

func TestValidate(t *testing.T) {
	good := New("g", geom.R(0, 0, 100, 40))
	good.AddBristle(Bristle{Name: "a", Side: West, Offset: 20, Flavor: BusTap, Net: "A"})
	good.StretchY = []geom.Coord{10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid cell rejected: %v", err)
	}

	offEdge := New("o", geom.R(0, 0, 100, 40))
	offEdge.AddBristle(Bristle{Name: "a", Side: West, Offset: 50})
	if err := offEdge.Validate(); err == nil {
		t.Error("off-edge bristle should be rejected")
	}

	noGuard := New("n", geom.R(0, 0, 100, 40))
	noGuard.AddBristle(Bristle{Name: "c", Side: North, Offset: 10, Flavor: Control})
	if err := noGuard.Validate(); err == nil {
		t.Error("control bristle without guard should be rejected")
	}

	noClass := New("p", geom.R(0, 0, 100, 40))
	noClass.AddBristle(Bristle{Name: "p", Side: North, Offset: 10, Flavor: PadReq})
	if err := noClass.Validate(); err == nil {
		t.Error("pad bristle without class should be rejected")
	}

	badCut := New("s", geom.R(0, 0, 100, 40))
	badCut.StretchY = []geom.Coord{40}
	if err := badCut.Validate(); err == nil {
		t.Error("stretch line on the boundary should be rejected")
	}

	empty := New("e", geom.Rect{})
	if err := empty.Validate(); err == nil {
		t.Error("empty abutment box should be rejected")
	}

	hier := New("h", geom.R(0, 0, 10, 10))
	hier.Layout.Place(New("sub", geom.R(0, 0, 4, 4)).Layout, geom.Identity)
	hier.StretchX = []geom.Coord{5}
	if err := hier.Validate(); err == nil {
		t.Error("stretchable non-leaf should be rejected")
	}
}

func TestCopyIsolation(t *testing.T) {
	c := New("c", geom.R(0, 0, 40, 40))
	c.Layout.AddBox(layer.Diff, geom.R(0, 0, 8, 8))
	c.AddBristle(Bristle{Name: "a", Side: West, Offset: 8})
	c.StretchY = []geom.Coord{20}
	c.Sticks = &sticks.Diagram{}
	c.Sticks.AddSeg(layer.Metal, geom.Pt(0, 0), geom.Pt(40, 0))
	c.Netlist = &transistor.Netlist{}
	c.Netlist.AddEnh("g", "s", "d", 8, 8)
	c.Logic = &logic.Diagram{}
	c.Logic.AddGate(logic.Inv, "out", "in")
	c.PowerUA = 100

	cp := c.Copy()
	cp.Bristles[0].Offset = 99
	cp.StretchY[0] = 1
	cp.Layout.Boxes[0].R = geom.R(0, 0, 1, 1)
	cp.Sticks.Segs[0].A = geom.Pt(5, 5)
	cp.Netlist.Txs[0].Gate = "x"
	cp.Logic.Gates[0].Output = "y"

	if c.Bristles[0].Offset != 8 || c.StretchY[0] != 20 {
		t.Error("copy shares bristles/stretch lines")
	}
	if c.Layout.Boxes[0].R != geom.R(0, 0, 8, 8) {
		t.Error("copy shares layout")
	}
	if c.Sticks.Segs[0].A != geom.Pt(0, 0) {
		t.Error("copy shares sticks")
	}
	if c.Netlist.Txs[0].Gate != "g" {
		t.Error("copy shares netlist")
	}
	if c.Logic.Gates[0].Output != "out" {
		t.Error("copy shares logic")
	}
	if cp.PowerUA != 100 {
		t.Error("power not copied")
	}
}

func TestWidthHeight(t *testing.T) {
	c := New("c", geom.R(5, 10, 45, 110))
	if c.Width() != 40 || c.Height() != 100 {
		t.Errorf("W,H = %d,%d", c.Width(), c.Height())
	}
}

func TestFlavorAndSideStrings(t *testing.T) {
	if BusTap.String() != "bus" || PadReq.String() != "pad" || Abut.String() != "abut" {
		t.Error("flavor names wrong")
	}
	if Flavor(99).String() == "" || Side(99).String() == "" {
		t.Error("out-of-range names should not be empty")
	}
}
