// Package cell defines the fundamental unit of the Bristle Blocks system:
// the procedural cell. A cell bundles its mask geometry with its other
// representations (sticks, transistors, logic, text, simulation notes,
// block info), its stretch lines, its power demand, and — the system's
// namesake — its bristles: typed connection points along the cell edges on
// which the compiler builds every computable structure.
package cell

import (
	"fmt"
	"sort"

	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/logic"
	"bristleblocks/internal/mask"
	"bristleblocks/internal/sticks"
	"bristleblocks/internal/transistor"
)

// Side identifies the cell edge a bristle sits on.
type Side uint8

const (
	// North is the top edge (y = Size.MaxY).
	North Side = iota
	// East is the right edge (x = Size.MaxX).
	East
	// South is the bottom edge (y = Size.MinY).
	South
	// West is the left edge (x = Size.MinX).
	West
)

var sideNames = [...]string{"N", "E", "S", "W"}

// String names the side (N, E, S, W).
func (s Side) String() string {
	if int(s) < len(sideNames) {
		return sideNames[s]
	}
	return fmt.Sprintf("Side(%d)", uint8(s))
}

// Horizontal reports whether the side runs horizontally (North/South), in
// which case bristle offsets are x positions; East/West offsets are y
// positions.
func (s Side) Horizontal() bool { return s == North || s == South }

// Flavor is the connection-point type: it tells the compiler which pass is
// responsible for hooking the bristle up and what to hook it to.
type Flavor uint8

const (
	// BusTap connects to a data bus running through the core; the Net field
	// names the bus.
	BusTap Flavor = iota
	// Control requests a decoder-driven control line; Guard holds the
	// decode function over microcode fields and Phase its clock timing.
	Control
	// Power is a VDD supply connection.
	Power
	// Ground is a GND supply connection.
	Ground
	// Clock is a clock connection; Net is "phi1" or "phi2".
	Clock
	// PadReq requests a pad; PadClass selects the pad flavor and the pad
	// pass places the pad and routes the wire.
	PadReq
	// Abut is a plain data connection that must line up with the abutting
	// neighbor cell (inter-cell data, e.g. a carry chain).
	Abut
)

var flavorNames = [...]string{"bus", "control", "power", "ground", "clock", "pad", "abut"}

// String names the bristle flavor.
func (f Flavor) String() string {
	if int(f) < len(flavorNames) {
		return flavorNames[f]
	}
	return fmt.Sprintf("Flavor(%d)", uint8(f))
}

// Bristle is one typed connection point on a cell edge.
type Bristle struct {
	Name   string
	Side   Side
	Offset geom.Coord // x for N/S sides, y for E/W sides (wire centerline)
	Layer  layer.Layer
	Width  geom.Coord
	Flavor Flavor
	Net    string // net name (bus name for BusTap, phi1/phi2 for Clock)
	// Guard is the decode function for Control bristles, in the microcode
	// guard expression language (see package decoder).
	Guard string
	// Phase is the clock phase (1 or 2) on which a Control signal must be
	// valid.
	Phase int
	// PadClass selects the pad flavor for PadReq bristles: "input",
	// "output", "vdd", "gnd", "phi1", "phi2".
	PadClass string
}

// Position returns the bristle's location on the cell boundary given the
// cell's abutment box.
func (b Bristle) Position(size geom.Rect) geom.Point {
	switch b.Side {
	case North:
		return geom.Pt(b.Offset, size.MaxY)
	case South:
		return geom.Pt(b.Offset, size.MinY)
	case East:
		return geom.Pt(size.MaxX, b.Offset)
	default:
		return geom.Pt(size.MinX, b.Offset)
	}
}

// PowerRail describes a supply rail that the stretch engine may widen to
// meet current-density requirements. Y is the rail centerline; Width its
// drawn width. Rails run horizontally across the full cell.
type PowerRail struct {
	Net   string // "vdd" or "gnd"
	Y     geom.Coord
	Width geom.Coord
}

// Cell is one Bristle Blocks cell: geometry, bristles, stretchability, and
// the cell's other representations.
type Cell struct {
	Name string
	// Layout is the mask-level geometry. Stretchable cells must be leaves
	// (no instances).
	Layout *mask.Cell
	// Size is the abutment box: the footprint neighbors see. Geometry may
	// extend slightly beyond it (e.g. poly heads) by interface agreement.
	Size geom.Rect
	// Bristles are the connection points.
	Bristles []Bristle
	// StretchX are vertical cut lines (x positions) where horizontal
	// stretch may be inserted; StretchY are horizontal cut lines (y
	// positions) for vertical stretch.
	StretchX, StretchY []geom.Coord
	// Rails lists the power rails for widening.
	Rails []PowerRail
	// PowerUA is the cell's supply current demand in microamps, used to
	// size rails along the core.
	PowerUA int
	// LambdaCentimicrons overrides the physical lambda when the cell is
	// written as standalone CIF (0 = the CIF default); library cells drawn
	// for a finer process carry their lambda with them.
	LambdaCentimicrons int

	// The remaining representations.
	Sticks  *sticks.Diagram
	Netlist *transistor.Netlist
	Logic   *logic.Diagram
	// Doc is the Text-level description fragment for the user's manual.
	Doc string
	// SimNote describes the cell's Simulation-level behaviour; the
	// executable behaviour lives with the element that owns the cell.
	SimNote string
	// BlockLabel and BlockClass feed the Block-level chip diagram.
	BlockLabel, BlockClass string
}

// New returns an empty cell with the given name and abutment box.
func New(name string, size geom.Rect) *Cell {
	return &Cell{
		Name:   name,
		Layout: mask.NewCell(name),
		Size:   size,
	}
}

// AddBristle appends a connection point.
func (c *Cell) AddBristle(b Bristle) {
	c.Bristles = append(c.Bristles, b)
}

// BristlesBy returns the cell's bristles with the given flavor, in edge
// order (sorted by side then offset).
func (c *Cell) BristlesBy(f Flavor) []Bristle {
	n := 0
	for _, b := range c.Bristles {
		if b.Flavor == f {
			n++
		}
	}
	out := make([]Bristle, 0, n)
	for _, b := range c.Bristles {
		if b.Flavor == f {
			out = append(out, b)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Side != out[j].Side {
			return out[i].Side < out[j].Side
		}
		return out[i].Offset < out[j].Offset
	})
	return out
}

// FindBristle returns the first bristle with the given name.
func (c *Cell) FindBristle(name string) (Bristle, bool) {
	for _, b := range c.Bristles {
		if b.Name == name {
			return b, true
		}
	}
	return Bristle{}, false
}

// Copy returns a deep copy of the cell (layout, bristles, stretch lines,
// representations), suitable for independent stretching.
func (c *Cell) Copy() *Cell {
	out := &Cell{
		Name:               c.Name,
		Layout:             c.Layout.Copy(),
		Size:               c.Size,
		Bristles:           append([]Bristle(nil), c.Bristles...),
		StretchX:           append([]geom.Coord(nil), c.StretchX...),
		StretchY:           append([]geom.Coord(nil), c.StretchY...),
		Rails:              append([]PowerRail(nil), c.Rails...),
		PowerUA:            c.PowerUA,
		LambdaCentimicrons: c.LambdaCentimicrons,
		Doc:                c.Doc,
		SimNote:            c.SimNote,
		BlockLabel:         c.BlockLabel,
		BlockClass:         c.BlockClass,
	}
	if c.Sticks != nil {
		out.Sticks = c.Sticks.Copy()
	}
	if c.Netlist != nil {
		out.Netlist = c.Netlist.Copy()
	}
	if c.Logic != nil {
		out.Logic = c.Logic.Copy()
	}
	return out
}

// Width and Height of the abutment box.
func (c *Cell) Width() geom.Coord { return c.Size.W() }

// Height is the abutment box height.
func (c *Cell) Height() geom.Coord { return c.Size.H() }

// Validate checks structural invariants: bristles lie on their edges within
// the abutment box, stretch lines lie inside the box, and stretchable cells
// are leaves.
func (c *Cell) Validate() error {
	if c.Layout == nil {
		return fmt.Errorf("cell %s: nil layout", c.Name)
	}
	if c.Size.Empty() {
		return fmt.Errorf("cell %s: empty abutment box", c.Name)
	}
	for _, b := range c.Bristles {
		var lo, hi geom.Coord
		if b.Side.Horizontal() {
			lo, hi = c.Size.MinX, c.Size.MaxX
		} else {
			lo, hi = c.Size.MinY, c.Size.MaxY
		}
		if b.Offset < lo || b.Offset > hi {
			return fmt.Errorf("cell %s: bristle %q offset %d outside edge [%d,%d]",
				c.Name, b.Name, b.Offset, lo, hi)
		}
		if b.Flavor == Control && b.Guard == "" {
			return fmt.Errorf("cell %s: control bristle %q has no guard", c.Name, b.Name)
		}
		if b.Flavor == PadReq && b.PadClass == "" {
			return fmt.Errorf("cell %s: pad bristle %q has no pad class", c.Name, b.Name)
		}
	}
	for _, x := range c.StretchX {
		if x <= c.Size.MinX || x >= c.Size.MaxX {
			return fmt.Errorf("cell %s: stretch-x line %d outside box", c.Name, x)
		}
	}
	for _, y := range c.StretchY {
		if y <= c.Size.MinY || y >= c.Size.MaxY {
			return fmt.Errorf("cell %s: stretch-y line %d outside box", c.Name, y)
		}
	}
	if (len(c.StretchX) > 0 || len(c.StretchY) > 0) && !c.Layout.IsLeaf() {
		return fmt.Errorf("cell %s: stretchable cells must be leaves", c.Name)
	}
	return nil
}
