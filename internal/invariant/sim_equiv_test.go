package invariant

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bristleblocks/internal/core"
	"bristleblocks/internal/desc"
	"bristleblocks/internal/specgen"
)

// simProgram is the deterministic micro-word sample a chip's two
// simulation backends are diffed over: every value of the low byte (which
// covers the suite format's whole OP field and most of SEL) plus a spread
// of full-width words from a fixed multiplicative sequence.
func simProgram(width int) []uint64 {
	mask := uint64(1)<<uint(width) - 1
	var prog []uint64
	for w := uint64(0); w < 256 && w <= mask; w++ {
		prog = append(prog, w)
	}
	for i := uint64(1); i <= 64; i++ {
		prog = append(prog, (i*2654435761)&mask)
	}
	return prog
}

// diffSims compiles the spec twice — sims built from one chip share its
// element models, so independent runs need independent compiles — and
// replays the same program through an interpreted simulation of one and a
// compiled simulation of the other, requiring byte-identical traces.
func diffSims(t *testing.T, label string, spec *core.Spec, opts *core.Options) {
	t.Helper()
	chipI, err := core.Compile(spec, opts)
	if err != nil {
		t.Fatalf("%s: compile: %v", label, err)
	}
	chipC, err := core.Compile(spec, opts)
	if err != nil {
		t.Fatalf("%s: compile: %v", label, err)
	}
	interp, err := chipI.NewSim()
	if err != nil {
		t.Fatalf("%s: NewSim: %v", label, err)
	}
	comp, err := chipC.NewCompiledSim()
	if err != nil {
		t.Fatalf("%s: NewCompiledSim: %v", label, err)
	}
	for _, w := range simProgram(chipI.Spec.Microcode.Width) {
		want := interp.Step(w)
		got := comp.Step(w)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: micro %#x: interpreted %+v, compiled %+v", label, w, want, got)
		}
	}
}

// TestCompiledSimMatchesInterpretedExamples diffs the two simulation
// backends over every checked-in example chip.
func TestCompiledSimMatchesInterpretedExamples(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "chips", "*.bb"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example chips: %v", err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := desc.Parse(string(data))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		diffSims(t, filepath.Base(p), spec, &core.Options{SkipPads: true})
	}
}

// TestCompiledSimMatchesInterpretedGenerated diffs the backends over 100
// generated specs — the same family the harness uses, so a failure names
// the reproducing seed.
func TestCompiledSimMatchesInterpretedGenerated(t *testing.T) {
	for i := 0; i < 100; i++ {
		seed := int64(4000 + i)
		spec := specgen.FromSeed(seed, nil)
		diffSims(t, spec.Name, spec, &core.Options{SkipPads: true})
	}
}
