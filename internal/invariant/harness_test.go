package invariant_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"bristleblocks/internal/core"
	"bristleblocks/internal/desc"
	"bristleblocks/internal/invariant"
	"bristleblocks/internal/scenario"
	"bristleblocks/internal/server"
	"bristleblocks/internal/server/farmtest"
	"bristleblocks/internal/specgen"
	"bristleblocks/internal/trace"
)

// The property-based harness: generate specs, cross-check every chip's
// representations, and diff every compile path. CI runs it wide
// (-invariant.n=200 -invariant.jobs=1,4,8); the defaults keep an ordinary
// `go test` fast. A failure names the generator seed, which reproduces the
// spec exactly (specgen.FromSeed).
var (
	flagN        = flag.Int("invariant.n", 25, "generated specs per harness test")
	flagPadsN    = flag.Int("invariant.padsn", 10, "generated specs for the pads-enabled differential")
	flagJobs     = flag.String("invariant.jobs", "1,4", "comma-separated pool sizes to diff (Passes 1 and 3)")
	flagSeed     = flag.Int64("invariant.seed", 1979, "first generator seed")
	flagEditSeqs = flag.Int("invariant.editseqs", 8, "edit sequences for the incremental differential")
	flagEdits    = flag.Int("invariant.edits", 3, "edits per incremental sequence")
	flagFarmN    = flag.Int("invariant.farmn", 10, "generated specs for the farm differential")
)

func harnessJobs(t *testing.T) []int {
	t.Helper()
	var jobs []int
	for _, f := range strings.Split(*flagJobs, ",") {
		j, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || j < 1 {
			t.Fatalf("-invariant.jobs: bad entry %q", f)
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// TestHarnessInvariants runs the cross-representation verifier over the
// generated spec family.
func TestHarnessInvariants(t *testing.T) {
	bad := 0
	for i := 0; i < *flagN; i++ {
		seed := *flagSeed + int64(i)
		spec := specgen.FromSeed(seed, nil)
		chip, err := core.Compile(spec, &core.Options{SkipPads: true})
		if err != nil {
			t.Errorf("seed %d (%s): compile: %v", seed, spec.Name, err)
			bad++
			continue
		}
		if vs := invariant.Check(chip, &invariant.Options{Seed: seed}); len(vs) > 0 {
			bad++
			for _, v := range vs {
				t.Errorf("seed %d (%s): %s", seed, spec.Name, v)
			}
		}
	}
	t.Logf("invariants: %d specs checked (first seed %d), %d with discrepancies", *flagN, *flagSeed, bad)
}

// TestHarnessDifferential diffs serial vs parallel vs cached compiles over
// the generated spec family.
func TestHarnessDifferential(t *testing.T) {
	jobs := harnessJobs(t)
	cacheDir := t.TempDir()
	bad := 0
	for i := 0; i < *flagN; i++ {
		seed := *flagSeed + int64(i)
		spec := specgen.FromSeed(seed, nil)
		if vs := invariant.Differential(spec, &core.Options{SkipPads: true}, jobs, cacheDir); len(vs) > 0 {
			bad++
			for _, v := range vs {
				t.Errorf("seed %d (%s): %s", seed, spec.Name, v)
			}
		}
	}
	t.Logf("differential: %d specs diffed at jobs=%v (first seed %d), %d with diffs", *flagN, jobs, *flagSeed, bad)
}

// TestHarnessPadsDifferential is the Pass 3 leg: pads-enabled compiles of
// ForPads specs must be byte-identical across pool sizes — the router's
// speculative net fan-out, wave snapshots, and moat×strategy racing all
// have to be invisible in the mask set and the statistics.
func TestHarnessPadsDifferential(t *testing.T) {
	jobs := harnessJobs(t)
	cacheDir := t.TempDir()
	bad := 0
	for i := 0; i < *flagPadsN; i++ {
		seed := *flagSeed + int64(i)
		spec := specgen.FromSeed(seed, &specgen.Config{ForPads: true})
		if vs := invariant.Differential(spec, &core.Options{}, jobs, cacheDir); len(vs) > 0 {
			bad++
			for _, v := range vs {
				t.Errorf("seed %d (%s): %s", seed, spec.Name, v)
			}
		}
	}
	t.Logf("pads differential: %d specs diffed at jobs=%v (first seed %d), %d with diffs", *flagPadsN, jobs, *flagSeed, bad)
}

// TestHarnessIncrementalDifferential is the incremental-compiler leg:
// random edit sequences compiled through a warm artifact store must be
// byte-identical to scratch compiles at every pool size. CI runs it wide
// (-invariant.editseqs=100 -invariant.jobs=1,4,8); a failure names the
// generator seed, which reproduces the base spec and the whole edit
// sequence (specgen.FromSeed + specgen.MutateN with seed+1).
func TestHarnessIncrementalDifferential(t *testing.T) {
	jobs := harnessJobs(t)
	bad := 0
	for i := 0; i < *flagEditSeqs; i++ {
		seed := *flagSeed + int64(i)
		base := specgen.FromSeed(seed, nil)
		seq := append([]*core.Spec{base},
			specgen.MutateN(rand.New(rand.NewSource(seed+1)), base, *flagEdits)...)
		if vs := invariant.DifferentialIncremental(seq, &core.Options{SkipPads: true}, jobs); len(vs) > 0 {
			bad++
			for _, v := range vs {
				t.Errorf("seed %d (%s): %s", seed, base.Name, v)
			}
		}
	}
	t.Logf("incremental differential: %d sequences × %d edits at jobs=%v (first seed %d), %d with diffs",
		*flagEditSeqs, *flagEdits, jobs, *flagSeed, bad)
}

// TestHarnessScenario is the waveform leg: every generated spec gets a
// scenario derived from the decoder's logic representation (the oracle
// the invariant checker trusts) and the compiled switch-level stepper
// must reproduce every vector — grade 100%, no hand-written
// expectations. This is the leg that exercises the generator's newest
// shapes (OP2 second decode fields, two-global conditional assembly,
// buses-plus-globals specs) end to end through simulation.
func TestHarnessScenario(t *testing.T) {
	bad := 0
	for i := 0; i < *flagN; i++ {
		seed := *flagSeed + int64(i)
		spec := specgen.FromSeed(seed, nil)
		chip, err := core.Compile(spec, &core.Options{SkipPads: true})
		if err != nil {
			t.Errorf("seed %d (%s): compile: %v", seed, spec.Name, err)
			bad++
			continue
		}
		sc, err := scenario.FromLogic(context.Background(), chip, seed, 24)
		if err != nil {
			t.Errorf("seed %d (%s): oracle scenario: %v", seed, spec.Name, err)
			bad++
			continue
		}
		v := scenario.Grade(chip, sc)
		if !v.Passed100() {
			bad++
			t.Errorf("seed %d (%s): graded %d%% (%d/%d vectors): %v",
				seed, spec.Name, v.GradePercent, v.Passed, v.Vectors, v.Failures)
		}
	}
	t.Logf("scenario: %d specs graded against the logic oracle (first seed %d), %d below 100%%", *flagN, *flagSeed, bad)
}

// TestHarnessDaemon is the bristlec-vs-bbd leg: the daemon's HTTP answer
// for a spec must match a direct in-process compile byte for byte.
func TestHarnessDaemon(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	n := *flagN
	for i := 0; i < n; i++ {
		seed := *flagSeed + int64(i)
		spec := specgen.FromSeed(seed, nil)

		opts := &core.Options{SkipPads: true, Parallelism: 1}
		chip, want, err := invariant.RenderOutputs(spec, opts)
		if err != nil {
			t.Fatalf("seed %d (%s): local compile: %v", seed, spec.Name, err)
		}

		// The HTTP arm injects a traceparent like any farm client would;
		// the daemon must join that trace, not mint its own.
		sc := trace.NewSpanContext()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/compile?nopads=1&reps=all",
			strings.NewReader(desc.Format(spec)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "text/plain")
		req.Header.Set("traceparent", sc.Traceparent())
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var cr server.CompileResponse
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d (%s): daemon returned %d", seed, spec.Name, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()

		if cr.CIF != want.CIF {
			t.Errorf("seed %d (%s): daemon CIF differs from the local compile's", seed, spec.Name)
		}
		if cr.Text != chip.Text {
			t.Errorf("seed %d (%s): daemon text representation differs", seed, spec.Name)
		}
		if cr.Block != chip.Block {
			t.Errorf("seed %d (%s): daemon block diagram differs", seed, spec.Name)
		}
		if cr.Logical != chip.Logical {
			t.Errorf("seed %d (%s): daemon logical diagram differs", seed, spec.Name)
		}
		if cr.Stats != chip.Stats {
			t.Errorf("seed %d (%s): daemon stats differ: %+v vs %+v", seed, spec.Name, cr.Stats, chip.Stats)
		}
		if cr.Chip != spec.Name {
			t.Errorf("seed %d: daemon says chip %q, spec says %q", seed, cr.Chip, spec.Name)
		}
		if cr.TraceID != sc.TraceIDString() {
			t.Errorf("seed %d: daemon compiled under trace %q, client injected %q", seed, cr.TraceID, sc.TraceIDString())
		}
	}
	t.Logf("daemon: %d specs compared over HTTP (first seed %d)", n, *flagSeed)
}

// TestHarnessFarmDifferential is the horizontal-scaling leg: a 3-worker
// farm behind a coordinator, compiling a batch of generated specs over
// the streaming endpoint, must be byte-identical — CIF, sticks, every
// text representation, and the statistics — to a single-node daemon AND
// to a direct in-process compile, at every pool size. Three more arms
// ride the same farm: a warm-hit arm re-requesting specs from a
// non-coordinator worker (the answer arrives through the peer cache
// tier and must still match), a verdict arm grading the example
// scenario suite on a farm node vs the single node, and the coordinator
// metrics sanity check. CI runs it wide (-invariant.farmn=200
// -invariant.jobs=1,4,8); a failure names the generator seed.
func TestHarnessFarmDifferential(t *testing.T) {
	n := *flagFarmN
	for _, j := range harnessJobs(t) {
		j := j
		t.Run(fmt.Sprintf("jobs=%d", j), func(t *testing.T) {
			farm, err := farmtest.New(farmtest.Config{
				Workers:     3,
				Coordinator: true,
				Node:        server.Config{Workers: 2, QueueDepth: 64, Parallelism: j},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer farm.Close()
			single, err := server.New(server.Config{Workers: 2, QueueDepth: 64, Parallelism: j})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(single.Handler())
			defer ts.Close()

			// Local references: the same compiles the other harness legs
			// trust, at Parallelism 1 so the farm arm also re-proves
			// pool-size invariance against the serial compiler.
			specs := make([]*core.Spec, n)
			texts := make([]string, n)
			chips := make([]*core.Chip, n)
			wants := make([]invariant.Outputs, n)
			for i := 0; i < n; i++ {
				seed := *flagSeed + int64(i)
				specs[i] = specgen.FromSeed(seed, nil)
				texts[i] = desc.Format(specs[i])
				chip, want, err := invariant.RenderOutputs(specs[i], &core.Options{SkipPads: true, Parallelism: 1})
				if err != nil {
					t.Fatalf("seed %d (%s): local compile: %v", seed, specs[i].Name, err)
				}
				chips[i], wants[i] = chip, want
			}

			// Arm 1: the whole corpus as one streaming batch through the
			// coordinator — cold compiles routed across the workers.
			body, err := json.Marshal(server.BatchRequest{Specs: texts})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(farm.Coordinator().URL+"/compile/batch?nopads=1&reps=all",
				"application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("batch returned %d", resp.StatusCode)
			}
			items := make([]*server.BatchItem, n)
			dec := json.NewDecoder(resp.Body)
			for dec.More() {
				var item server.BatchItem
				if err := dec.Decode(&item); err != nil {
					t.Fatalf("batch stream: %v", err)
				}
				if item.Index < 0 || item.Index >= n {
					t.Fatalf("batch stream: index %d out of range", item.Index)
				}
				if items[item.Index] != nil {
					t.Fatalf("batch stream: index %d delivered twice", item.Index)
				}
				it := item
				items[item.Index] = &it
			}
			resp.Body.Close()

			// Arm 2: every spec against the single-node daemon and the local
			// reference, field by field.
			for i := 0; i < n; i++ {
				seed := *flagSeed + int64(i)
				name := specs[i].Name
				if items[i] == nil {
					t.Fatalf("seed %d (%s): batch never delivered index %d", seed, name, i)
				}
				if items[i].Error != "" || items[i].Result == nil {
					t.Fatalf("seed %d (%s): batch item failed: %q", seed, name, items[i].Error)
				}
				fr := items[i].Result

				sresp, err := http.Post(ts.URL+"/compile?nopads=1&reps=all", "text/plain",
					strings.NewReader(texts[i]))
				if err != nil {
					t.Fatal(err)
				}
				if sresp.StatusCode != http.StatusOK {
					t.Fatalf("seed %d (%s): single node returned %d", seed, name, sresp.StatusCode)
				}
				var sr server.CompileResponse
				if err := json.NewDecoder(sresp.Body).Decode(&sr); err != nil {
					t.Fatal(err)
				}
				sresp.Body.Close()

				for _, d := range []struct{ what, farm, single, local string }{
					{"CIF", fr.CIF, sr.CIF, wants[i].CIF},
					{"sticks", fr.Sticks, sr.Sticks, wants[i].Sticks},
					{"text", fr.Text, sr.Text, chips[i].Text},
					{"block", fr.Block, sr.Block, chips[i].Block},
					{"logical", fr.Logical, sr.Logical, chips[i].Logical},
				} {
					if d.farm != d.single {
						t.Errorf("seed %d (%s): farm %s differs from single-node", seed, name, d.what)
					}
					if d.farm != d.local {
						t.Errorf("seed %d (%s): farm %s differs from local compile", seed, name, d.what)
					}
				}
				if fr.Stats != sr.Stats || fr.Stats != chips[i].Stats {
					t.Errorf("seed %d (%s): stats differ: farm %+v single %+v local %+v",
						seed, name, fr.Stats, sr.Stats, chips[i].Stats)
				}
				if fr.Chip != name || sr.Chip != name {
					t.Errorf("seed %d: chip named %q/%q, spec says %q", seed, fr.Chip, sr.Chip, name)
				}
			}

			// Arm 3: warm hits through the peer tier. The batch populated the
			// shard owners; a worker that didn't compile a spec must answer
			// from the shared tier — cached, and still byte-identical.
			warm := farm.Workers()[0]
			for i := 0; i < n; i += 3 {
				seed := *flagSeed + int64(i)
				wresp, err := http.Post(warm.URL+"/compile?nopads=1&reps=all", "text/plain",
					strings.NewReader(texts[i]))
				if err != nil {
					t.Fatal(err)
				}
				if wresp.StatusCode != http.StatusOK {
					t.Fatalf("seed %d: warm worker returned %d", seed, wresp.StatusCode)
				}
				var wr server.CompileResponse
				if err := json.NewDecoder(wresp.Body).Decode(&wr); err != nil {
					t.Fatal(err)
				}
				wresp.Body.Close()
				if !wr.Cached {
					t.Errorf("seed %d (%s): warm request recompiled; the batch should have warmed the tier", seed, specs[i].Name)
				}
				if wr.CIF != wants[i].CIF || wr.Sticks != wants[i].Sticks || wr.Stats != chips[i].Stats {
					t.Errorf("seed %d (%s): warm peer-tier answer differs from the local compile", seed, specs[i].Name)
				}
			}

			// Arm 4: the example scenario suite graded on a farm worker vs the
			// single node — verdict lists must match byte for byte.
			chipsDir := filepath.Join("..", "..", "examples", "chips")
			bbs, err := filepath.Glob(filepath.Join(chipsDir, "*.bb"))
			if err != nil || len(bbs) == 0 {
				t.Fatalf("no example chips found: %v", err)
			}
			for _, bb := range bbs {
				name := strings.TrimSuffix(filepath.Base(bb), ".bb")
				sv := filepath.Join("..", "..", "examples", "scenarios", name+".sv")
				specSrc, err := os.ReadFile(bb)
				if err != nil {
					t.Fatal(err)
				}
				vectors, err := os.ReadFile(sv)
				if err != nil {
					t.Fatal(err)
				}
				req := server.VerifyRequest{Spec: string(specSrc), Vectors: string(vectors)}
				fv := postVerifyJSON(t, farm.Workers()[1].URL+"/verify", req)
				sv2 := postVerifyJSON(t, ts.URL+"/verify", req)
				if fv.Chip != sv2.Chip || fv.Passed != sv2.Passed || fv.Key != sv2.Key || fv.Stats != sv2.Stats {
					t.Errorf("%s: farm verdict header differs: %+v vs %+v", name, fv, sv2)
				}
				fb, _ := json.Marshal(fv.Verdicts)
				sb, _ := json.Marshal(sv2.Verdicts)
				if !bytes.Equal(fb, sb) {
					t.Errorf("%s: farm verdict list differs from single-node:\nfarm:   %s\nsingle: %s", name, fb, sb)
				}
			}
		})
	}
	t.Logf("farm differential: %d specs batched through a 3-worker farm at jobs=%v (first seed %d)",
		n, harnessJobs(t), *flagSeed)
}

func postVerifyJSON(t *testing.T, url string, req server.VerifyRequest) *server.VerifyResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s returned %d", url, resp.StatusCode)
	}
	var vr server.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	return &vr
}
