package invariant_test

import (
	"context"
	"encoding/json"
	"flag"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"bristleblocks/internal/core"
	"bristleblocks/internal/desc"
	"bristleblocks/internal/invariant"
	"bristleblocks/internal/scenario"
	"bristleblocks/internal/server"
	"bristleblocks/internal/specgen"
	"bristleblocks/internal/trace"
)

// The property-based harness: generate specs, cross-check every chip's
// representations, and diff every compile path. CI runs it wide
// (-invariant.n=200 -invariant.jobs=1,4,8); the defaults keep an ordinary
// `go test` fast. A failure names the generator seed, which reproduces the
// spec exactly (specgen.FromSeed).
var (
	flagN        = flag.Int("invariant.n", 25, "generated specs per harness test")
	flagPadsN    = flag.Int("invariant.padsn", 10, "generated specs for the pads-enabled differential")
	flagJobs     = flag.String("invariant.jobs", "1,4", "comma-separated pool sizes to diff (Passes 1 and 3)")
	flagSeed     = flag.Int64("invariant.seed", 1979, "first generator seed")
	flagEditSeqs = flag.Int("invariant.editseqs", 8, "edit sequences for the incremental differential")
	flagEdits    = flag.Int("invariant.edits", 3, "edits per incremental sequence")
)

func harnessJobs(t *testing.T) []int {
	t.Helper()
	var jobs []int
	for _, f := range strings.Split(*flagJobs, ",") {
		j, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || j < 1 {
			t.Fatalf("-invariant.jobs: bad entry %q", f)
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// TestHarnessInvariants runs the cross-representation verifier over the
// generated spec family.
func TestHarnessInvariants(t *testing.T) {
	bad := 0
	for i := 0; i < *flagN; i++ {
		seed := *flagSeed + int64(i)
		spec := specgen.FromSeed(seed, nil)
		chip, err := core.Compile(spec, &core.Options{SkipPads: true})
		if err != nil {
			t.Errorf("seed %d (%s): compile: %v", seed, spec.Name, err)
			bad++
			continue
		}
		if vs := invariant.Check(chip, &invariant.Options{Seed: seed}); len(vs) > 0 {
			bad++
			for _, v := range vs {
				t.Errorf("seed %d (%s): %s", seed, spec.Name, v)
			}
		}
	}
	t.Logf("invariants: %d specs checked (first seed %d), %d with discrepancies", *flagN, *flagSeed, bad)
}

// TestHarnessDifferential diffs serial vs parallel vs cached compiles over
// the generated spec family.
func TestHarnessDifferential(t *testing.T) {
	jobs := harnessJobs(t)
	cacheDir := t.TempDir()
	bad := 0
	for i := 0; i < *flagN; i++ {
		seed := *flagSeed + int64(i)
		spec := specgen.FromSeed(seed, nil)
		if vs := invariant.Differential(spec, &core.Options{SkipPads: true}, jobs, cacheDir); len(vs) > 0 {
			bad++
			for _, v := range vs {
				t.Errorf("seed %d (%s): %s", seed, spec.Name, v)
			}
		}
	}
	t.Logf("differential: %d specs diffed at jobs=%v (first seed %d), %d with diffs", *flagN, jobs, *flagSeed, bad)
}

// TestHarnessPadsDifferential is the Pass 3 leg: pads-enabled compiles of
// ForPads specs must be byte-identical across pool sizes — the router's
// speculative net fan-out, wave snapshots, and moat×strategy racing all
// have to be invisible in the mask set and the statistics.
func TestHarnessPadsDifferential(t *testing.T) {
	jobs := harnessJobs(t)
	cacheDir := t.TempDir()
	bad := 0
	for i := 0; i < *flagPadsN; i++ {
		seed := *flagSeed + int64(i)
		spec := specgen.FromSeed(seed, &specgen.Config{ForPads: true})
		if vs := invariant.Differential(spec, &core.Options{}, jobs, cacheDir); len(vs) > 0 {
			bad++
			for _, v := range vs {
				t.Errorf("seed %d (%s): %s", seed, spec.Name, v)
			}
		}
	}
	t.Logf("pads differential: %d specs diffed at jobs=%v (first seed %d), %d with diffs", *flagPadsN, jobs, *flagSeed, bad)
}

// TestHarnessIncrementalDifferential is the incremental-compiler leg:
// random edit sequences compiled through a warm artifact store must be
// byte-identical to scratch compiles at every pool size. CI runs it wide
// (-invariant.editseqs=100 -invariant.jobs=1,4,8); a failure names the
// generator seed, which reproduces the base spec and the whole edit
// sequence (specgen.FromSeed + specgen.MutateN with seed+1).
func TestHarnessIncrementalDifferential(t *testing.T) {
	jobs := harnessJobs(t)
	bad := 0
	for i := 0; i < *flagEditSeqs; i++ {
		seed := *flagSeed + int64(i)
		base := specgen.FromSeed(seed, nil)
		seq := append([]*core.Spec{base},
			specgen.MutateN(rand.New(rand.NewSource(seed+1)), base, *flagEdits)...)
		if vs := invariant.DifferentialIncremental(seq, &core.Options{SkipPads: true}, jobs); len(vs) > 0 {
			bad++
			for _, v := range vs {
				t.Errorf("seed %d (%s): %s", seed, base.Name, v)
			}
		}
	}
	t.Logf("incremental differential: %d sequences × %d edits at jobs=%v (first seed %d), %d with diffs",
		*flagEditSeqs, *flagEdits, jobs, *flagSeed, bad)
}

// TestHarnessScenario is the waveform leg: every generated spec gets a
// scenario derived from the decoder's logic representation (the oracle
// the invariant checker trusts) and the compiled switch-level stepper
// must reproduce every vector — grade 100%, no hand-written
// expectations. This is the leg that exercises the generator's newest
// shapes (OP2 second decode fields, two-global conditional assembly,
// buses-plus-globals specs) end to end through simulation.
func TestHarnessScenario(t *testing.T) {
	bad := 0
	for i := 0; i < *flagN; i++ {
		seed := *flagSeed + int64(i)
		spec := specgen.FromSeed(seed, nil)
		chip, err := core.Compile(spec, &core.Options{SkipPads: true})
		if err != nil {
			t.Errorf("seed %d (%s): compile: %v", seed, spec.Name, err)
			bad++
			continue
		}
		sc, err := scenario.FromLogic(context.Background(), chip, seed, 24)
		if err != nil {
			t.Errorf("seed %d (%s): oracle scenario: %v", seed, spec.Name, err)
			bad++
			continue
		}
		v := scenario.Grade(chip, sc)
		if !v.Passed100() {
			bad++
			t.Errorf("seed %d (%s): graded %d%% (%d/%d vectors): %v",
				seed, spec.Name, v.GradePercent, v.Passed, v.Vectors, v.Failures)
		}
	}
	t.Logf("scenario: %d specs graded against the logic oracle (first seed %d), %d below 100%%", *flagN, *flagSeed, bad)
}

// TestHarnessDaemon is the bristlec-vs-bbd leg: the daemon's HTTP answer
// for a spec must match a direct in-process compile byte for byte.
func TestHarnessDaemon(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	n := *flagN
	for i := 0; i < n; i++ {
		seed := *flagSeed + int64(i)
		spec := specgen.FromSeed(seed, nil)

		opts := &core.Options{SkipPads: true, Parallelism: 1}
		chip, want, err := invariant.RenderOutputs(spec, opts)
		if err != nil {
			t.Fatalf("seed %d (%s): local compile: %v", seed, spec.Name, err)
		}

		// The HTTP arm injects a traceparent like any farm client would;
		// the daemon must join that trace, not mint its own.
		sc := trace.NewSpanContext()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/compile?nopads=1&reps=all",
			strings.NewReader(desc.Format(spec)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "text/plain")
		req.Header.Set("traceparent", sc.Traceparent())
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var cr server.CompileResponse
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d (%s): daemon returned %d", seed, spec.Name, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()

		if cr.CIF != want.CIF {
			t.Errorf("seed %d (%s): daemon CIF differs from the local compile's", seed, spec.Name)
		}
		if cr.Text != chip.Text {
			t.Errorf("seed %d (%s): daemon text representation differs", seed, spec.Name)
		}
		if cr.Block != chip.Block {
			t.Errorf("seed %d (%s): daemon block diagram differs", seed, spec.Name)
		}
		if cr.Logical != chip.Logical {
			t.Errorf("seed %d (%s): daemon logical diagram differs", seed, spec.Name)
		}
		if cr.Stats != chip.Stats {
			t.Errorf("seed %d (%s): daemon stats differ: %+v vs %+v", seed, spec.Name, cr.Stats, chip.Stats)
		}
		if cr.Chip != spec.Name {
			t.Errorf("seed %d: daemon says chip %q, spec says %q", seed, cr.Chip, spec.Name)
		}
		if cr.TraceID != sc.TraceIDString() {
			t.Errorf("seed %d: daemon compiled under trace %q, client injected %q", seed, cr.TraceID, sc.TraceIDString())
		}
	}
	t.Logf("daemon: %d specs compared over HTTP (first seed %d)", n, *flagSeed)
}
