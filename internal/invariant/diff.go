package invariant

import (
	"bytes"
	"context"
	"fmt"

	"bristleblocks/internal/cache"
	"bristleblocks/internal/cif"
	"bristleblocks/internal/core"
)

// Outputs is one compile's byte-comparable output set: the CIF mask set,
// the rendered sticks diagram, and a statistics report. Two compiles of
// the same spec along any path (serial, parallel, cached, daemon) must
// produce identical Outputs.
type Outputs struct {
	CIF, Sticks, Report string
}

// RenderOutputs compiles a spec and renders its comparable outputs.
func RenderOutputs(spec *core.Spec, opts *core.Options) (*core.Chip, Outputs, error) {
	chip, err := core.Compile(spec, opts)
	if err != nil {
		return nil, Outputs{}, err
	}
	out, err := chipOutputs(chip)
	return chip, out, err
}

func chipOutputs(chip *core.Chip) (Outputs, error) {
	var buf bytes.Buffer
	lambda := chip.Spec.LambdaCentimicrons
	if lambda <= 0 {
		lambda = cif.DefaultLambdaCentimicrons
	}
	if err := cif.Write(&buf, chip.Mask, lambda); err != nil {
		return Outputs{}, err
	}
	// The report excludes pass times (never deterministic) but covers every
	// derived statistic and the column table.
	report := fmt.Sprintf("stats: %+v\ncolumns: %v\n", chip.Stats, chip.Columns())
	return Outputs{CIF: buf.String(), Sticks: chip.Sticks.Render(16), Report: report}, nil
}

// diffOutputs names the first field where two output sets diverge.
func diffOutputs(label string, want, got Outputs) []string {
	var vs []string
	if got.CIF != want.CIF {
		vs = append(vs, label+": CIF mask set differs from the serial baseline")
	}
	if got.Sticks != want.Sticks {
		vs = append(vs, label+": sticks diagram differs from the serial baseline")
	}
	if got.Report != want.Report {
		vs = append(vs, fmt.Sprintf("%s: statistics report differs from the serial baseline:\n%s\nvs\n%s",
			label, got.Report, want.Report))
	}
	return vs
}

// Differential compiles one spec along every local path and reports any
// output difference:
//
//   - serial (Parallelism=1) is the baseline;
//   - each entry of jobs recompiles with that Pass 1 pool size;
//   - a cold compile through the cache layer (Render) must match a second,
//     independent cold compile byte for byte, the in-memory hit must
//     return the stored bytes unchanged, and when cacheDir is non-empty
//     the result must survive the disk layer's JSON round trip intact;
//   - the cache's CIF rendering must equal the direct cif.Write output, so
//     daemon responses and bristlec files are comparable bytes.
//
// The spec's extra representations must be enabled (the cache stores
// them). Returned strings are discrepancies; empty means every path
// agrees.
func Differential(spec *core.Spec, opts *core.Options, jobs []int, cacheDir string) []string {
	if opts == nil {
		opts = &core.Options{}
	}
	base := *opts
	base.Parallelism = 1
	_, want, err := RenderOutputs(spec, &base)
	if err != nil {
		return []string{fmt.Sprintf("serial compile failed: %v", err)}
	}

	var vs []string
	for _, j := range jobs {
		if j == 1 {
			continue
		}
		par := *opts
		par.Parallelism = j
		_, got, err := RenderOutputs(spec, &par)
		if err != nil {
			vs = append(vs, fmt.Sprintf("-j %d compile failed: %v", j, err))
			continue
		}
		vs = append(vs, diffOutputs(fmt.Sprintf("-j %d", j), want, got)...)
	}

	vs = append(vs, cacheLegs(spec, opts, want, cacheDir)...)
	return vs
}

// cacheLegs runs the cold/hit/disk comparisons.
func cacheLegs(spec *core.Spec, opts *core.Options, want Outputs, cacheDir string) []string {
	ctx := context.Background()
	var vs []string

	cold, err := cache.New(0, "")
	if err != nil {
		return []string{fmt.Sprintf("cache: %v", err)}
	}
	res1, cached, err := cold.Compile(ctx, spec, opts)
	if err != nil {
		return []string{fmt.Sprintf("cache: cold compile failed: %v", err)}
	}
	if cached {
		vs = append(vs, "cache: first compile claimed a hit on an empty cache")
	}
	// The cache's stored CIF must be the same bytes a direct compile
	// writes — this ties the daemon's serving path to bristlec's.
	if string(res1.CIF) != want.CIF {
		vs = append(vs, "cache: rendered CIF differs from the direct compile's")
	}

	// Independent cold compile through a second cache: run-to-run
	// determinism of the whole Render pipeline.
	cold2, _ := cache.New(0, "")
	res2, _, err := cold2.Compile(ctx, spec, opts)
	if err != nil {
		return append(vs, fmt.Sprintf("cache: second cold compile failed: %v", err))
	}
	vs = append(vs, diffResults("cache cold-vs-cold", res1, res2)...)

	// In-memory hit.
	res3, cached, err := cold.Compile(ctx, spec, opts)
	if err != nil {
		return append(vs, fmt.Sprintf("cache: warm compile failed: %v", err))
	}
	if !cached {
		vs = append(vs, "cache: identical spec missed the warm cache")
	}
	vs = append(vs, diffResults("cache hit-vs-cold", res1, res3)...)

	// Disk layer: store through one cache, read through a fresh one rooted
	// at the same directory; the JSON round trip must be lossless.
	if cacheDir != "" {
		dc1, err := cache.New(0, cacheDir)
		if err != nil {
			return append(vs, fmt.Sprintf("cache: disk layer: %v", err))
		}
		if _, _, err := dc1.Compile(ctx, spec, opts); err != nil {
			return append(vs, fmt.Sprintf("cache: disk-backed compile failed: %v", err))
		}
		dc2, err := cache.New(0, cacheDir)
		if err != nil {
			return append(vs, fmt.Sprintf("cache: disk layer: %v", err))
		}
		res4, ok := dc2.Get(cache.Key(spec, opts))
		if !ok {
			return append(vs, "cache: result did not survive the disk layer")
		}
		vs = append(vs, diffResults("cache disk-vs-cold", res1, res4)...)
	}
	return vs
}

// diffResults byte-compares two cached results.
func diffResults(label string, want, got *cache.Result) []string {
	var vs []string
	if !bytes.Equal(got.CIF, want.CIF) {
		vs = append(vs, label+": CIF bytes differ")
	}
	if got.Text != want.Text {
		vs = append(vs, label+": text representation differs")
	}
	if got.Block != want.Block {
		vs = append(vs, label+": block diagram differs")
	}
	if got.Logical != want.Logical {
		vs = append(vs, label+": logical diagram differs")
	}
	if got.Stats != want.Stats {
		vs = append(vs, fmt.Sprintf("%s: statistics differ: %+v vs %+v", label, got.Stats, want.Stats))
	}
	if got.Chip != want.Chip {
		vs = append(vs, label+": chip name differs")
	}
	return vs
}
