package invariant

import (
	"os"
	"path/filepath"
	"testing"

	"bristleblocks/internal/core"
	"bristleblocks/internal/desc"
	"bristleblocks/internal/specgen"
)

// compileExample parses and compiles one checked-in example spec.
func compileExample(t *testing.T, name string, opts *core.Options) *core.Chip {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "chips", name))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := desc.Parse(string(data))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	chip, err := core.Compile(spec, opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return chip
}

// TestExamplesConsistent: the checked-in example chips must pass every
// cross-representation check, with and without the pad ring.
func TestExamplesConsistent(t *testing.T) {
	for _, name := range []string{"adder4.bb", "shifter8.bb"} {
		for _, opts := range []*core.Options{{SkipPads: true}, nil} {
			label := name + "/pads"
			if opts != nil {
				label = name + "/nopads"
			}
			t.Run(label, func(t *testing.T) {
				if opts == nil && testing.Short() {
					t.Skip("pad routing is slow")
				}
				chip := compileExample(t, name, opts)
				for _, v := range Check(chip, nil) {
					t.Errorf("%s", v)
				}
			})
		}
	}
}

// TestSkipExtraRepsRejected: Check refuses a chip compiled without its
// extra representations instead of silently passing it.
func TestSkipExtraRepsRejected(t *testing.T) {
	chip := compileExample(t, "adder4.bb", &core.Options{SkipPads: true, SkipExtraReps: true})
	if vs := Check(chip, nil); len(vs) != 1 {
		t.Fatalf("want the single SkipExtraReps refusal, got %v", vs)
	}
}

// TestGeneratedConsistent: a batch of generated specs passes the checks.
// This is a fast subset of the full harness (see harness_test.go).
func TestGeneratedConsistent(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		spec := specgen.FromSeed(seed, nil)
		chip, err := core.Compile(spec, &core.Options{SkipPads: true})
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, spec.Name, err)
		}
		for _, v := range Check(chip, &Options{Seed: seed + 1}) {
			t.Errorf("seed %d (%s): %s", seed, spec.Name, v)
		}
	}
}

// TestDifferentialExamples: the example chips produce identical bytes
// along every compile path.
func TestDifferentialExamples(t *testing.T) {
	for _, name := range []string{"adder4.bb", "shifter8.bb"} {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("..", "..", "examples", "chips", name))
			if err != nil {
				t.Fatal(err)
			}
			spec, err := desc.Parse(string(data))
			if err != nil {
				t.Fatal(err)
			}
			opts := &core.Options{SkipPads: true}
			for _, v := range Differential(spec, opts, []int{1, 4}, t.TempDir()) {
				t.Errorf("%s", v)
			}
		})
	}
}
