package invariant

import (
	"context"
	"fmt"

	"bristleblocks/internal/core"
	"bristleblocks/internal/incr"
)

// RenderOutputsCtx is RenderOutputs with a caller-supplied context, the
// hook the incremental arm uses to attach an artifact store.
func RenderOutputsCtx(ctx context.Context, spec *core.Spec, opts *core.Options) (*core.Chip, Outputs, error) {
	chip, err := core.CompileCtx(ctx, spec, opts)
	if err != nil {
		return nil, Outputs{}, err
	}
	out, err := chipOutputs(chip)
	return chip, out, err
}

// DifferentialIncremental replays one edit sequence through a warm
// artifact store and diffs every step against a scratch compile. seq is
// the sequence of specs (the base spec first, then each edited revision,
// e.g. from specgen.Mutate); every revision is compiled twice — once
// through the store that the previous revisions warmed, once from scratch
// with no store — and the two must agree byte for byte on CIF, sticks,
// and the statistics report. The whole sequence is repeated per entry of
// jobs, with a fresh store each time, so cache reuse is also checked
// against Pass 1/3 pool-size variation.
//
// Returned strings are discrepancies; empty means the incremental
// compiler is indistinguishable from the scratch compiler on this
// sequence.
func DifferentialIncremental(seq []*core.Spec, opts *core.Options, jobs []int) []string {
	if opts == nil {
		opts = &core.Options{}
	}
	var vs []string
	for _, j := range jobs {
		o := *opts
		o.Parallelism = j
		store, err := incr.New(0, "")
		if err != nil {
			return append(vs, fmt.Sprintf("incr store: %v", err))
		}
		ctx := incr.WithStore(context.Background(), store)
		for step, spec := range seq {
			label := fmt.Sprintf("-j %d edit %d (%s)", j, step, spec.Name)
			_, want, err := RenderOutputs(spec, &o)
			if err != nil {
				vs = append(vs, label+": scratch compile failed: "+err.Error())
				break
			}
			_, got, err := RenderOutputsCtx(ctx, spec, &o)
			if err != nil {
				vs = append(vs, label+": incremental compile failed: "+err.Error())
				break
			}
			vs = append(vs, diffOutputs(label, want, got)...)
		}
		// A store that never hits despite guaranteed overlap would make the
		// arm vacuous — every compile would be a scratch compile in
		// disguise. Tiny specs can legitimately share nothing between
		// revisions (a one-element chip re-keys everything on any edit), so
		// the check fires only when some consecutive pair provably shares a
		// cacheable element.
		if expectReuse(seq) && store.Counters().Hits == 0 {
			vs = append(vs, fmt.Sprintf("-j %d: artifact store never hit across %d revisions", j, len(seq)))
		}
	}
	return vs
}

// expectReuse reports whether some consecutive pair of revisions is
// guaranteed at least one gen-artifact hit: same globals, same data
// width, same element count (so bus plans and positions align), and an
// element that is byte-for-byte identical at the same position.
func expectReuse(seq []*core.Spec) bool {
	for i := 1; i < len(seq); i++ {
		a, b := seq[i-1], seq[i]
		if a.DataWidth != b.DataWidth || len(a.Elements) != len(b.Elements) {
			continue
		}
		if !equalGlobals(a.Globals, b.Globals) {
			continue
		}
		for j := range a.Elements {
			// Guarded elements may be compiled out, so only an
			// unconditionally enabled identical element guarantees a hit.
			if a.Elements[j].OnlyIf == "" && equalElement(&a.Elements[j], &b.Elements[j]) {
				return true
			}
		}
	}
	return false
}

func equalGlobals(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func equalElement(a, b *core.ElementSpec) bool {
	if a.Kind != b.Kind || a.Name != b.Name || a.OnlyIf != b.OnlyIf || len(a.Params) != len(b.Params) {
		return false
	}
	for k, v := range a.Params {
		if bv, ok := b.Params[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
