// Package invariant is the cross-representation verifier: it takes one
// compiled chip and checks that the seven representations describe the
// same hardware — the paper's central claim, turned into an executable
// oracle. The checks are deliberately redundant with the compiler (each
// re-derives a fact from one representation and confronts another with
// it):
//
//   - the transistor netlist extracted from the mask layout matches the
//     declared Transistor representation;
//   - every sticks segment lies inside drawn layout geometry on its layer
//     (the sticks diagram is a topology-preserving abstraction of the
//     mask, so a stick with no metal under it is a lie);
//   - the power report equals the sum of the per-column votes that sized
//     the rails;
//   - every stretched core cell shares the final pitch and the
//     chip-standard bus offsets;
//   - evaluating the decoder's Logic representation agrees with the
//     Simulation representation's control trace on generated microcode
//     vectors.
//
// Check returns human-readable discrepancies (empty = consistent); the
// differential harness in this package's tests runs it over specgen's
// generated chips.
package invariant

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"bristleblocks/internal/core"
	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/sticks"
	"bristleblocks/internal/transistor"
)

// Options tunes a check run.
type Options struct {
	// SimVectors is the number of random microcode words driven through
	// the logic-vs-simulation comparison (<=0 selects 32).
	SimVectors int
	// Seed feeds the vector generator (0 selects 1); the same seed
	// reproduces the same vectors.
	Seed int64
}

func (o *Options) vectors() int {
	if o == nil || o.SimVectors <= 0 {
		return 32
	}
	return o.SimVectors
}

func (o *Options) seed() int64 {
	if o == nil || o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Check cross-checks a compiled chip's representations and returns every
// discrepancy found. The chip must come from a full-representation compile
// (no SkipExtraReps); pads are optional.
func Check(chip *core.Chip, opts *Options) []string {
	return CheckCtx(context.Background(), chip, opts)
}

// CheckCtx is Check with a context: an incr store riding the context lets
// the logic-vs-simulation check reuse the memoized compiled decoder logic
// program across runs.
func CheckCtx(ctx context.Context, chip *core.Chip, opts *Options) []string {
	var vs []string
	if chip.Netlist == nil || chip.Sticks == nil || chip.Logic == nil {
		return []string{"chip was compiled without its extra representations (SkipExtraReps); nothing to cross-check"}
	}
	vs = append(vs, checkNetlist(chip)...)
	vs = append(vs, checkSticks(chip)...)
	vs = append(vs, checkPower(chip)...)
	vs = append(vs, checkPitch(chip)...)
	vs = append(vs, checkLogicSim(ctx, chip, opts)...)
	return vs
}

// LogicSim runs only the logic-vs-simulation check — the cheap, compiled
// subset of Check that bbd runs on every cold compile. Unlike Check it
// needs no extra representations beyond the decoder, so it works on any
// full compile.
func LogicSim(ctx context.Context, chip *core.Chip, opts *Options) []string {
	return checkLogicSim(ctx, chip, opts)
}

// checkNetlist re-derives the Transistor representation from the Layout
// representation (mask extraction) and compares it with the declared
// netlist at global-net granularity: the transistor population — kind,
// size, and connectivity to the shared nets (supplies, clocks, buses,
// controls, pads) — must agree exactly.
func checkNetlist(chip *core.Chip) []string {
	ext, err := transistor.Extract(chip.Mask)
	if err != nil {
		return []string{fmt.Sprintf("netlist: extraction from layout failed: %v", err)}
	}
	var vs []string
	if len(ext.Txs) != len(chip.Netlist.Txs) {
		vs = append(vs, fmt.Sprintf("netlist: layout extraction found %d transistors, declared netlist has %d",
			len(ext.Txs), len(chip.Netlist.Txs)))
	}
	keep := chip.GlobalNets()
	if got, want := ext.GlobalSignature(keep), chip.Netlist.GlobalSignature(keep); got != want {
		vs = append(vs, "netlist: extracted and declared netlists differ on the global-net signature")
	}
	return vs
}

// checkSticks verifies that every segment of the Sticks representation is
// covered by drawn mask geometry on the same layer. The converse is not an
// invariant — power trunks and compiler-inserted fillers carry no sticks —
// but a stick over bare silicon means the two representations diverged.
func checkSticks(chip *core.Chip) []string {
	rects := make(map[layer.Layer][]geom.Rect)
	chip.Mask.Flatten(func(l layer.Layer, r geom.Rect) {
		if !r.Empty() {
			rects[l] = append(rects[l], r)
		}
	})
	var vs []string
	bad := 0
	for _, seg := range chip.Sticks.Segs {
		if covered(seg, rects[seg.Layer]) {
			continue
		}
		bad++
		if bad <= 5 {
			vs = append(vs, fmt.Sprintf("sticks: %v segment %v-%v has no layout geometry under it",
				seg.Layer, seg.A, seg.B))
		}
	}
	if bad > 5 {
		vs = append(vs, fmt.Sprintf("sticks: ... and %d more uncovered segments", bad-5))
	}
	return vs
}

// covered reports whether the Manhattan segment lies entirely inside the
// union of rects (closed bounds: a centerline on a geometry edge counts).
func covered(seg sticks.Seg, rects []geom.Rect) bool {
	a, b := seg.A, seg.B
	switch {
	case a.Y == b.Y:
		lo, hi := a.X, b.X
		if lo > hi {
			lo, hi = hi, lo
		}
		return spanCovered(lo, hi, a.Y, rects, true)
	case a.X == b.X:
		lo, hi := a.Y, b.Y
		if lo > hi {
			lo, hi = hi, lo
		}
		return spanCovered(lo, hi, a.X, rects, false)
	default:
		return false // non-Manhattan sticks are themselves a violation
	}
}

// spanCovered checks that [lo,hi] at the given cross coordinate is covered
// by the union of the rects' intersections with that line.
func spanCovered(lo, hi, cross geom.Coord, rects []geom.Rect, horizontal bool) bool {
	type iv struct{ lo, hi geom.Coord }
	var ivs []iv
	for _, r := range rects {
		var clo, chi, rlo, rhi geom.Coord
		if horizontal {
			clo, chi, rlo, rhi = r.MinY, r.MaxY, r.MinX, r.MaxX
		} else {
			clo, chi, rlo, rhi = r.MinX, r.MaxX, r.MinY, r.MaxY
		}
		if cross < clo || cross > chi || rhi < lo || rlo > hi {
			continue
		}
		s, e := rlo, rhi
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		ivs = append(ivs, iv{s, e})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	at := lo
	for _, v := range ivs {
		if v.lo > at {
			return false
		}
		if v.hi > at {
			at = v.hi
		}
		if at >= hi {
			return true
		}
	}
	return at >= hi
}

// checkPower verifies the power report: the chip-level supply total must
// equal the sum of the per-column votes (the "elements vote on the values
// of global parameters" barrier), and every vote must be non-negative.
func checkPower(chip *core.Chip) []string {
	var vs []string
	sum := 0
	for _, col := range chip.Columns() {
		if col.PowerUA < 0 {
			vs = append(vs, fmt.Sprintf("power: column %s votes a negative current (%d µA)", col.Name, col.PowerUA))
		}
		sum += col.PowerUA
	}
	if sum != chip.Stats.PowerUA {
		vs = append(vs, fmt.Sprintf("power: report says %d µA, per-column votes sum to %d µA",
			chip.Stats.PowerUA, sum))
	}
	return vs
}

// checkPitch verifies the stretch fan-in's postcondition: every placed
// core cell was stretched to the common pitch, and the bus bristles sit at
// the same chip-standard offsets in every cell (otherwise abutting columns
// would misalign their bus wires).
func checkPitch(chip *core.Chip) []string {
	var vs []string
	pitch := chip.Stats.Pitch
	busAt := make(map[string]geom.Coord)
	for _, pc := range chip.PlacedCells() {
		if h := pc.Cell.Height(); h != pitch {
			vs = append(vs, fmt.Sprintf("pitch: cell %s at column %s row %d is %dλ/4 tall, pitch is %dλ/4",
				pc.Cell.Name, pc.Column, pc.Row, h, pitch))
			continue
		}
		for _, name := range []string{"busA.W", "busB.W"} {
			b, ok := pc.Cell.FindBristle(name)
			if !ok {
				continue
			}
			// Compare in core coordinates so cells with different MinY
			// agree on the absolute wire track.
			off := b.Offset - pc.Cell.Size.MinY
			if prev, ok := busAt[name]; !ok {
				busAt[name] = off
			} else if prev != off {
				vs = append(vs, fmt.Sprintf("pitch: cell %s at column %s puts %s at offset %d, other cells at %d",
					pc.Cell.Name, pc.Column, name, off, prev))
			}
		}
	}
	if len(vs) > 8 {
		vs = append(vs[:8], fmt.Sprintf("pitch: ... and %d more misaligned cells", len(vs)-8))
	}
	return vs
}

// checkLogicSim drives random microcode vectors through two independent
// derivations of the control function: gate-level evaluation of the
// decoder's Logic representation, and the Simulation representation's
// per-phase control trace. Both descend from the same PLA, by different
// code paths (explicit gates vs. direct term evaluation), so a mismatch
// means one representation lies about the chip's control behaviour.
//
// Both sides run compiled (logic.Compiled slot sweeps against the
// closure-chain sim.Compiled stepper), which is what makes this check
// cheap enough for bbd to run on every cold compile. The two compiled
// backends are themselves pinned against their interpreted originals by
// their packages' equivalence tests.
func checkLogicSim(ctx context.Context, chip *core.Chip, opts *Options) []string {
	if chip.Decoder == nil {
		return []string{"logic-sim: chip has no decoder (core-only compile?)"}
	}
	m, err := chip.NewCompiledSim()
	if err != nil {
		return []string{fmt.Sprintf("logic-sim: building simulation: %v", err)}
	}
	arr := chip.Decoder.Array
	prog, err := chip.CompiledDecoderLogic(ctx)
	if err != nil {
		return []string{fmt.Sprintf("logic-sim: decoder logic diagram invalid: %v", err)}
	}
	type inSlot struct {
		slot int
		bit  int
	}
	var ins []inSlot
	for _, bit := range arr.UsedInputs() {
		if s, ok := prog.Slot(fmt.Sprintf("u%d", bit)); ok {
			ins = append(ins, inSlot{s, bit})
		}
	}
	ctlSlots := make([]int, len(arr.Controls))
	for i, sp := range arr.Controls {
		s, ok := prog.Slot(sp.Name)
		if !ok {
			return []string{fmt.Sprintf("logic-sim: logic rep drives no net for control %s", sp.Name)}
		}
		ctlSlots[i] = s
	}

	state := prog.NewState()
	r := rand.New(rand.NewSource(opts.seed()))
	width := chip.Spec.Microcode.Width
	var vs []string
	for i := 0; i < opts.vectors(); i++ {
		micro := r.Uint64()
		if width < 64 {
			micro &= 1<<uint(width) - 1
		}
		for _, in := range ins {
			state[in.slot] = micro>>uint(in.bit)&1 == 1
		}
		prog.Eval(state)
		// StepCtl's slices are indexed per the compiled decoder's control
		// order, which is the array's control order.
		ctl1, ctl2 := m.StepCtl(micro)
		for ci, sp := range arr.Controls {
			v := state[ctlSlots[ci]]
			want1 := sp.Phase == 1 && v
			want2 := sp.Phase == 2 && v
			if ctl1[ci] != want1 || ctl2[ci] != want2 {
				vs = append(vs, fmt.Sprintf(
					"logic-sim: micro %#x control %s: logic rep says φ1=%v φ2=%v, simulation says φ1=%v φ2=%v",
					micro, sp.Name, want1, want2, ctl1[ci], ctl2[ci]))
				if len(vs) >= 5 {
					return vs
				}
			}
		}
	}
	return vs
}
