package specgen

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"bristleblocks/internal/core"
	"bristleblocks/internal/desc"
)

// FuzzGenerate is the structured fuzzer into the generator: the fuzz
// engine explores the (seed, config) space and every generated spec must
// uphold the full validity contract — Validate, a lossless desc round
// trip, and a clean SkipPads compile. A failure here is either a generator
// bug (it emitted an invalid spec) or a compiler bug (it rejected or
// mangled a valid one); the failing seed reproduces it exactly.
//
// Seed corpus: testdata/corpus/specgen/*, one "seed pads" pair per file.
func FuzzGenerate(f *testing.F) {
	dir := filepath.Join("..", "..", "testdata", "corpus", "specgen")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("seed corpus missing: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		fields := strings.Fields(string(data))
		if len(fields) != 2 {
			f.Fatalf("corpus entry %s: want \"seed pads\", got %q", e.Name(), data)
		}
		seed, err1 := strconv.ParseInt(fields[0], 10, 64)
		pads, err2 := strconv.ParseBool(fields[1])
		if err1 != nil || err2 != nil {
			f.Fatalf("corpus entry %s: %v %v", e.Name(), err1, err2)
		}
		f.Add(seed, pads)
	}
	f.Fuzz(func(t *testing.T, seed int64, pads bool) {
		spec := FromSeed(seed, &Config{ForPads: pads})
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: invalid spec: %v", seed, err)
		}
		txt := desc.Format(spec)
		re, err := desc.Parse(txt)
		if err != nil {
			t.Fatalf("seed %d: generated spec does not parse: %v\n%s", seed, err, txt)
		}
		if got := desc.Format(re); got != txt {
			t.Fatalf("seed %d: round trip changed the spec:\n%s\nvs\n%s", seed, txt, got)
		}
		// The compile stays off the pad pass even for ForPads specs: the
		// fuzz budget buys breadth, and Pass 3 dominates the runtime.
		// FuzzGeneratePads covers the pad pass.
		if _, err := core.Compile(spec, &core.Options{SkipPads: true, SkipExtraReps: true}); err != nil {
			t.Fatalf("seed %d (%s): %v\n%s", seed, spec.Name, err, txt)
		}
	})
}

// FuzzGeneratePads drives the whole pipeline INCLUDING Pass 3: every
// ForPads spec the generator emits must place a pad ring and route every
// net — a routing failure here is a real congestion bug in the pad pass
// (or a generator spec the router legitimately cannot satisfy, which the
// generator contract forbids). The A* fan-out rework made pads-enabled
// compiles cheap enough to fuzz (a few ms per spec).
//
// Seed corpus: testdata/corpus/specgen-pads/*, one seed per file.
func FuzzGeneratePads(f *testing.F) {
	dir := filepath.Join("..", "..", "testdata", "corpus", "specgen-pads")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("seed corpus missing: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		seed, err := strconv.ParseInt(strings.TrimSpace(string(data)), 10, 64)
		if err != nil {
			f.Fatalf("corpus entry %s: %v", e.Name(), err)
		}
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		spec := FromSeed(seed, &Config{ForPads: true})
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: invalid spec: %v", seed, err)
		}
		chip, err := core.Compile(spec, &core.Options{SkipExtraReps: true})
		if err != nil {
			t.Fatalf("seed %d (%s): pad pass failed: %v", seed, spec.Name, err)
		}
		if chip.Stats.RouteNets == 0 {
			t.Fatalf("seed %d (%s): pad pass routed no nets", seed, spec.Name)
		}
	})
}
