package specgen

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"bristleblocks/internal/core"
	"bristleblocks/internal/desc"
)

// FuzzGenerate is the structured fuzzer into the generator: the fuzz
// engine explores the (seed, config) space and every generated spec must
// uphold the full validity contract — Validate, a lossless desc round
// trip, and a clean SkipPads compile. A failure here is either a generator
// bug (it emitted an invalid spec) or a compiler bug (it rejected or
// mangled a valid one); the failing seed reproduces it exactly.
//
// Seed corpus: testdata/corpus/specgen/*, one "seed pads" pair per file.
func FuzzGenerate(f *testing.F) {
	dir := filepath.Join("..", "..", "testdata", "corpus", "specgen")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("seed corpus missing: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		fields := strings.Fields(string(data))
		if len(fields) != 2 {
			f.Fatalf("corpus entry %s: want \"seed pads\", got %q", e.Name(), data)
		}
		seed, err1 := strconv.ParseInt(fields[0], 10, 64)
		pads, err2 := strconv.ParseBool(fields[1])
		if err1 != nil || err2 != nil {
			f.Fatalf("corpus entry %s: %v %v", e.Name(), err1, err2)
		}
		f.Add(seed, pads)
	}
	f.Fuzz(func(t *testing.T, seed int64, pads bool) {
		spec := FromSeed(seed, &Config{ForPads: pads})
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: invalid spec: %v", seed, err)
		}
		txt := desc.Format(spec)
		re, err := desc.Parse(txt)
		if err != nil {
			t.Fatalf("seed %d: generated spec does not parse: %v\n%s", seed, err, txt)
		}
		if got := desc.Format(re); got != txt {
			t.Fatalf("seed %d: round trip changed the spec:\n%s\nvs\n%s", seed, txt, got)
		}
		// The compile stays off the pad pass even for ForPads specs: the
		// fuzz budget buys breadth, and Pass 3 dominates the runtime.
		if _, err := core.Compile(spec, &core.Options{SkipPads: true, SkipExtraReps: true}); err != nil {
			t.Fatalf("seed %d (%s): %v\n%s", seed, spec.Name, err, txt)
		}
	})
}
