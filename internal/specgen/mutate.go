package specgen

import (
	"fmt"
	"math/rand"
	"sort"

	"bristleblocks/internal/core"
	"bristleblocks/internal/desc"
)

// Mutate returns a copy of spec with one random valid edit applied — the
// unit of change the incremental compiler is measured against. Edit kinds:
//
//   - tweak one element parameter (a const value, a register count, an
//     ALU operation, a decode guard's opcode);
//   - add one element to, or remove one from, the middle of the list
//     (skipped for specs with explicit bus ranges, which index element
//     positions, and never touching the west-end anchor);
//   - flip one conditional-assembly global.
//
// Like Generate, all randomness comes from r, so a (seed, edit-count)
// pair fully identifies an edit sequence. The result always differs from
// the input (compared by desc.Format) and always passes Validate; Mutate
// retries internally until both hold.
func Mutate(r *rand.Rand, spec *core.Spec) *core.Spec {
	g := &gen{r: r, cfg: &Config{}}
	g.hasEN = hasField(spec, "EN")
	g.hasOP2 = hasField(spec, "OP2")
	before := desc.Format(spec)
	for {
		m := cloneSpec(spec)
		g.applyEdit(m)
		if desc.Format(m) == before {
			continue // no-op edit (e.g. rerolled the same value); try again
		}
		if m.Validate() != nil {
			continue
		}
		return m
	}
}

// MutateN applies n successive Mutate edits, returning every intermediate
// spec (length n, final spec last) — one harness edit sequence.
func MutateN(r *rand.Rand, spec *core.Spec, n int) []*core.Spec {
	out := make([]*core.Spec, n)
	cur := spec
	for i := range out {
		cur = Mutate(r, cur)
		out[i] = cur
	}
	return out
}

func hasField(spec *core.Spec, name string) bool {
	for _, f := range spec.Microcode.Fields {
		if f.Name == name {
			return true
		}
	}
	return false
}

// cloneSpec deep-copies the mutable parts of a spec (elements, params,
// globals); the microcode format and bus ranges are shared read-only.
func cloneSpec(spec *core.Spec) *core.Spec {
	m := *spec
	m.Elements = make([]core.ElementSpec, len(spec.Elements))
	for i, e := range spec.Elements {
		m.Elements[i] = e
		m.Elements[i].Params = make(map[string]string, len(e.Params))
		for k, v := range e.Params {
			m.Elements[i].Params[k] = v
		}
	}
	if spec.Globals != nil {
		m.Globals = make(map[string]bool, len(spec.Globals))
		for k, v := range spec.Globals {
			m.Globals[k] = v
		}
	}
	return &m
}

// applyEdit applies one randomly chosen edit in place. Structural edits
// (add/remove) are disabled for specs with explicit bus ranges: ranges
// index the post-assembly element list, so inserting or deleting would
// shift every segment boundary rather than model a local edit. For the
// same reason a global flip is only offered when no element carries an
// OnlyIf guard or the spec has no explicit buses — flipping a global a
// guard references changes the enabled-element count under fixed ranges.
func (g *gen) applyEdit(spec *core.Spec) {
	structural := len(spec.Buses) == 0
	n := 2
	if structural {
		n = 4
	}
	flippable := len(spec.Globals) > 0 && (structural || !anyGuarded(spec))
	if flippable {
		n++
	}
	switch k := g.intn(n); {
	case k < 2:
		g.tweakParam(&spec.Elements[g.intn(len(spec.Elements))])
	case structural && k == 2:
		// Insert a fresh middle element after the anchor — and before an
		// east-end I/O port, which the compiler requires to stay last.
		hi := len(spec.Elements)
		if spec.Elements[hi-1].Kind == "ioport" && hi > 1 {
			hi--
		}
		at := 1 + g.intn(hi)
		e := g.middleElement(fmt.Sprintf("m%d", g.intn(1000)), spec)
		spec.Elements = append(spec.Elements[:at],
			append([]core.ElementSpec{e}, spec.Elements[at:]...)...)
	case structural && k == 3:
		// Remove a non-anchor element (keep at least the anchor).
		if len(spec.Elements) > 1 {
			at := 1 + g.intn(len(spec.Elements)-1)
			spec.Elements = append(spec.Elements[:at], spec.Elements[at+1:]...)
		}
	default:
		// Flip one global, picked from the sorted name list: map iteration
		// order would break the (seed, edit-count) determinism contract.
		names := make([]string, 0, len(spec.Globals))
		for name := range spec.Globals {
			names = append(names, name)
		}
		sort.Strings(names)
		name := names[g.intn(len(names))]
		spec.Globals[name] = !spec.Globals[name]
	}
}

// anyGuarded reports whether any element carries a conditional-assembly
// guard.
func anyGuarded(spec *core.Spec) bool {
	for _, e := range spec.Elements {
		if e.OnlyIf != "" {
			return true
		}
	}
	return false
}

// tweakParam edits one parameter of one element, staying inside the
// element kind's vocabulary.
func (g *gen) tweakParam(e *core.ElementSpec) {
	switch e.Kind {
	case "const":
		e.Params["value"] = fmt.Sprint(g.intn(256))
	case "alu":
		if g.chance(1, 2) {
			ops := []string{"add", "and", "or", "xor", "nand"}
			e.Params["op"] = ops[g.intn(len(ops))]
		} else {
			e.Params["rd"] = g.op()
		}
	case "registers", "dualreg":
		if g.chance(1, 2) {
			e.Params["ld"] = g.guard()
		} else {
			e.Params["rd"] = g.guard()
		}
	case "ioport":
		e.Params["io"] = g.op()
	default: // shifter, xfer, ...
		for _, p := range []string{"ld", "rd", "x"} {
			if _, ok := e.Params[p]; ok {
				e.Params[p] = g.op()
				return
			}
		}
	}
}
