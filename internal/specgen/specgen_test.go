package specgen

import (
	"math/rand"
	"testing"

	"bristleblocks/internal/core"
	"bristleblocks/internal/desc"
)

// TestDeterministic: a seed fully identifies a spec — the property that
// lets a failing harness case reproduce from its seed alone.
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := desc.Format(FromSeed(seed, nil))
		b := desc.Format(FromSeed(seed, nil))
		if a != b {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestValidRoundTrip: every generated spec passes Validate and survives
// the description-language round trip unchanged (Format is canonical, so
// Format ∘ Parse ∘ Format must be the identity on generated specs).
func TestValidRoundTrip(t *testing.T) {
	for _, cfg := range []*Config{nil, {ForPads: true}} {
		for seed := int64(0); seed < 150; seed++ {
			spec := FromSeed(seed, cfg)
			if err := spec.Validate(); err != nil {
				t.Fatalf("seed %d: invalid spec: %v", seed, err)
			}
			txt := desc.Format(spec)
			re, err := desc.Parse(txt)
			if err != nil {
				t.Fatalf("seed %d: generated spec does not parse: %v\n%s", seed, err, txt)
			}
			if got := desc.Format(re); got != txt {
				t.Fatalf("seed %d: round trip changed the spec:\n%s\nvs\n%s", seed, txt, got)
			}
		}
	}
}

// TestGeneratedSpecsCompile: the generator's validity contract is semantic,
// not just syntactic — every spec must survive the three passes it targets.
func TestGeneratedSpecsCompile(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		spec := FromSeed(seed, nil)
		if _, err := core.Compile(spec, &core.Options{SkipPads: true}); err != nil {
			t.Fatalf("seed %d (%s): %v\n%s", seed, spec.Name, err, desc.Format(spec))
		}
	}
}

// TestGeneratedSpecsCompileWithPads: ForPads specs close the full ring.
// Pad routing dominates the runtime, so the sample is small and skipped
// under -short.
func TestGeneratedSpecsCompileWithPads(t *testing.T) {
	if testing.Short() {
		t.Skip("pad routing is slow")
	}
	for seed := int64(0); seed < 6; seed++ {
		spec := FromSeed(seed, &Config{ForPads: true})
		if _, err := core.Compile(spec, nil); err != nil {
			t.Fatalf("seed %d (%s): %v\n%s", seed, spec.Name, err, desc.Format(spec))
		}
	}
}

// TestVariety guards against the generator silently degenerating: across a
// modest seed range it must still exercise every axis of variation it
// advertises (bus segmentations, pad flavors, guards, lambda overrides,
// several data widths and element kinds).
func TestVariety(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var buses, ioports, globals, lambdas int
	var op2, twoGlobals, busesAndGlobals, evenPads int
	widths := map[int]bool{}
	kinds := map[string]bool{}
	for i := 0; i < 300; i++ {
		spec := Generate(r, nil)
		if len(spec.Buses) > 0 {
			buses++
		}
		if len(spec.Globals) > 0 {
			globals++
			if len(spec.Buses) > 0 {
				busesAndGlobals++
			}
		}
		if len(spec.Globals) > 1 {
			twoGlobals++
		}
		if _, ok := spec.Microcode.FieldByName("OP2"); ok {
			op2++
		}
		if spec.EvenPads {
			evenPads++
		}
		if spec.LambdaCentimicrons > 0 {
			lambdas++
		}
		widths[spec.DataWidth] = true
		for _, e := range spec.Elements {
			kinds[e.Kind] = true
			if e.Kind == "ioport" {
				ioports++
			}
		}
	}
	if buses < 50 || ioports < 20 || globals < 20 || lambdas < 20 {
		t.Fatalf("variety collapsed: buses=%d ioports=%d globals=%d lambdas=%d",
			buses, ioports, globals, lambdas)
	}
	if op2 < 30 || twoGlobals < 5 || busesAndGlobals < 10 || evenPads < 20 {
		t.Fatalf("new shapes collapsed: op2=%d twoGlobals=%d busesAndGlobals=%d evenPads=%d",
			op2, twoGlobals, busesAndGlobals, evenPads)
	}
	if len(widths) < 5 {
		t.Fatalf("only %d distinct data widths generated", len(widths))
	}
	for _, k := range []string{"registers", "dualreg", "alu", "shifter", "const", "ioport", "xfer"} {
		if !kinds[k] {
			t.Fatalf("element kind %q never generated", k)
		}
	}
}

// TestPathologicalPadShapes: the ForPads generator must still emit the
// stress shapes — a lone-port core and a core at the extra-element
// ceiling — and both must survive the full three-pass compile.
func TestPathologicalPadShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("pad routing is slow")
	}
	r := rand.New(rand.NewSource(7))
	var lone, ceiling *core.Spec
	for i := 0; i < 400 && (lone == nil || ceiling == nil); i++ {
		spec := Generate(r, &Config{ForPads: true})
		if len(spec.Elements) == 1 && spec.Elements[0].Kind == "ioport" && lone == nil {
			lone = spec
		}
		if len(spec.Elements) >= 5 && ceiling == nil {
			ceiling = spec
		}
	}
	if lone == nil || ceiling == nil {
		t.Fatalf("stress shapes never generated: lone=%v ceiling=%v", lone != nil, ceiling != nil)
	}
	for _, spec := range []*core.Spec{lone, ceiling} {
		if _, err := core.Compile(spec, nil); err != nil {
			t.Errorf("%s (%d elements): %v\n%s",
				spec.Name, len(spec.Elements), err, desc.Format(spec))
		}
	}
}
