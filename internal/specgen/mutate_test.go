package specgen

import (
	"math/rand"
	"testing"

	"bristleblocks/internal/core"
	"bristleblocks/internal/desc"
)

// TestMutateDeterministic: a (seed, edit index) pair fully identifies an
// edit sequence, the property the differential harness reproduces from.
func TestMutateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		base := FromSeed(seed, nil)
		a := MutateN(rand.New(rand.NewSource(seed+1000)), base, 4)
		b := MutateN(rand.New(rand.NewSource(seed+1000)), base, 4)
		for i := range a {
			if desc.Format(a[i]) != desc.Format(b[i]) {
				t.Fatalf("seed %d edit %d: two runs diverge", seed, i)
			}
		}
	}
}

// TestMutateAlwaysChangesAndValidates: every edit produces a spec that
// differs from its input and passes Validate — Mutate's two contracts.
func TestMutateAlwaysChangesAndValidates(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		spec := FromSeed(seed, nil)
		prev := desc.Format(spec)
		for i := 0; i < 5; i++ {
			spec = Mutate(r, spec)
			if err := spec.Validate(); err != nil {
				t.Fatalf("seed %d edit %d: invalid spec: %v\n%s", seed, i, err, desc.Format(spec))
			}
			cur := desc.Format(spec)
			if cur == prev {
				t.Fatalf("seed %d edit %d: edit was a no-op", seed, i)
			}
			prev = cur
		}
	}
}

// TestMutateDoesNotAliasInput: Mutate must return a deep copy — editing
// the result never reaches the input spec (the harness compares the two).
func TestMutateDoesNotAliasInput(t *testing.T) {
	base := FromSeed(7, nil)
	before := desc.Format(base)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		Mutate(r, base)
		if desc.Format(base) != before {
			t.Fatalf("edit %d mutated the input spec", i)
		}
	}
}

// TestMutatePreservesStructuralInvariants: bus-segmented specs keep their
// element count (ranges index positions), and every spec keeps its
// west-end anchor.
func TestMutatePreservesStructuralInvariants(t *testing.T) {
	structuralSeen := false
	for seed := int64(0); seed < 60; seed++ {
		base := FromSeed(seed, nil)
		r := rand.New(rand.NewSource(seed))
		cur := base
		for i := 0; i < 4; i++ {
			next := Mutate(r, cur)
			if len(base.Buses) > 0 && len(next.Elements) != len(cur.Elements) {
				t.Fatalf("seed %d: structural edit on a bus-segmented spec", seed)
			}
			if len(next.Elements) != len(cur.Elements) {
				structuralSeen = true
			}
			if next.Elements[0].Name != base.Elements[0].Name {
				t.Fatalf("seed %d: west-end anchor edited away", seed)
			}
			cur = next
		}
	}
	if !structuralSeen {
		t.Fatal("no structural edit across 60 seeds: add/remove arm dead")
	}
}

// TestMutatedSpecsCompile: the edit vocabulary stays inside what the
// compiler accepts — every edited spec compiles.
func TestMutatedSpecsCompile(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		spec := FromSeed(seed, nil)
		for i := 0; i < 3; i++ {
			spec = Mutate(r, spec)
			if _, err := core.Compile(spec, &core.Options{SkipPads: true}); err != nil {
				t.Fatalf("seed %d edit %d (%s): %v\n%s", seed, i, spec.Name, err, desc.Format(spec))
			}
		}
	}
}
