// Package specgen generates random-but-valid chip specifications for
// property-based testing. The paper's claim — every element carries seven
// consistent representations of the same chip — is only as strong as the
// variety of chips it is checked against; specgen turns "a handful of
// hand-written examples" into an unbounded, reproducible family: random
// datapath widths, element mixes from the compiler's kind registry, bus
// segmentations, pad flavors, conditional-assembly globals, and physical
// lambda overrides.
//
// Generation is deterministic: all randomness comes from the caller's
// *rand.Rand, so a seed fully identifies a spec (FromSeed) and a failing
// case reproduces exactly. Every generated spec passes core.Spec.Validate,
// survives the desc round trip, and compiles (the package tests pin all
// three properties).
package specgen

import (
	"fmt"
	"math/rand"

	"bristleblocks/internal/bus"
	"bristleblocks/internal/core"
	"bristleblocks/internal/decoder"
)

// Config bounds the generator.
type Config struct {
	// MaxExtraElements bounds the elements generated after the mandatory
	// first one (<=0 selects 4).
	MaxExtraElements int
	// ForPads keeps the spec safe for a full three-pass compile: I/O ports
	// are placed only at the west end (an east-side port requires the core
	// to be at least as wide as the decoder, which a random spec cannot
	// promise). Without it, specs target SkipPads compiles and may place a
	// mirrored I/O port at the east end too. ForPads specs also stress the
	// pad ring itself: some draw the pathological shapes (a single-port
	// core much narrower than its decoder, a core at the extra-element
	// ceiling) and some select the paper's evenly-spaced pad mode.
	ForPads bool
}

func (c *Config) maxExtra() int {
	if c == nil || c.MaxExtraElements <= 0 {
		return 4
	}
	return c.MaxExtraElements
}

func (c *Config) forPads() bool { return c != nil && c.ForPads }

// FromSeed generates the spec identified by seed.
func FromSeed(seed int64, cfg *Config) *core.Spec {
	return Generate(rand.New(rand.NewSource(seed)), cfg)
}

// Generate builds one random valid chip specification, drawing all
// randomness from r.
func Generate(r *rand.Rand, cfg *Config) *core.Spec {
	g := &gen{r: r, cfg: cfg}
	return g.spec()
}

type gen struct {
	r   *rand.Rand
	cfg *Config
	// hasEN records whether the microcode format carries the optional EN
	// field, so guards may reference it.
	hasEN bool
	// hasOP2 records whether the format carries the second decode field
	// OP2, so guards may mix terms from two opcode groups.
	hasOP2 bool
	// explicitBuses commits this spec to a generated bus segmentation.
	explicitBuses bool
	// globalNames is the ordered list of conditional-assembly globals the
	// spec declares; onlyIf draws from it by index so generation stays
	// deterministic (Go map iteration order is not).
	globalNames []string
}

func (g *gen) intn(n int) int { return g.r.Intn(n) }

// chance reports true with probability num/den.
func (g *gen) chance(num, den int) bool { return g.r.Intn(den) < num }

func (g *gen) spec() *core.Spec {
	spec := &core.Spec{
		Name:      fmt.Sprintf("gen%04d", g.intn(10000)),
		Microcode: g.microcode(),
		DataWidth: g.dataWidth(),
	}
	// Physical lambda override: most chips use the default 2.5 µm process;
	// some carry a finer or coarser one (the CIF scale must not leak into
	// any other representation).
	if g.chance(1, 4) {
		spec.LambdaCentimicrons = []int{100, 200, 300}[g.intn(3)]
	}
	g.explicitBuses = g.chance(1, 2)
	// Conditional assembly: a PROTO global — sometimes joined by the
	// paper's PROTOTYPE — plus guarded elements. The first element is
	// always unguarded so assembly never empties the core. Explicit buses
	// and globals now coexist: bus ranges index the post-assembly element
	// list, and the globals' values are known here, so buses() partitions
	// over the enabled-element count.
	if g.chance(3, 10) {
		spec.Globals = map[string]bool{"PROTO": g.chance(1, 2)}
		g.globalNames = []string{"PROTO"}
		if g.chance(1, 3) {
			spec.Globals["PROTOTYPE"] = g.chance(1, 2)
			g.globalNames = append(g.globalNames, "PROTOTYPE")
		}
	}
	// Pad placement mode: some chips space their pads evenly around the
	// ring (the paper's alternative to pulling pads toward their
	// connection points).
	if g.chance(1, 5) {
		spec.EvenPads = true
	}
	g.elements(spec)
	g.buses(spec)
	return spec
}

// microcode builds the instruction format: OP and SEL always (the guard
// vocabulary), EN sometimes, and sometimes a second decode field OP2 —
// the multi-decoder shape, where guards mix terms from two opcode
// groups — inside a word wide enough for the fields plus random slack.
func (g *gen) microcode() *decoder.Format {
	f := &decoder.Format{
		Fields: []decoder.Field{
			{Name: "OP", Lo: 0, Width: 4},
			{Name: "SEL", Lo: 4, Width: 2 + g.intn(2)}, // 2 or 3 bits
		},
	}
	if g.chance(1, 2) {
		lo := f.Fields[len(f.Fields)-1].Lo + f.Fields[len(f.Fields)-1].Width
		f.Fields = append(f.Fields, decoder.Field{Name: "EN", Lo: lo, Width: 1})
		g.hasEN = true
	}
	if g.chance(1, 3) {
		lo := f.Fields[len(f.Fields)-1].Lo + f.Fields[len(f.Fields)-1].Width
		f.Fields = append(f.Fields, decoder.Field{Name: "OP2", Lo: lo, Width: 3})
		g.hasOP2 = true
	}
	end := f.Fields[len(f.Fields)-1].Lo + f.Fields[len(f.Fields)-1].Width
	f.Width = end + g.intn(6) // fields + 0..5 bits of slack
	if f.Width < 10 {
		f.Width = 10
	}
	return f
}

func (g *gen) dataWidth() int {
	widths := []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 16}
	return widths[g.intn(len(widths))]
}

// op returns a single-field guard term.
func (g *gen) op() string { return fmt.Sprintf("OP=%d", 1+g.intn(14)) }

// op2 returns a single-field guard term over the second decode field.
func (g *gen) op2() string { return fmt.Sprintf("OP2=%d", 1+g.intn(7)) }

// guard returns a random decode expression over the microcode fields.
func (g *gen) guard() string {
	n := 5
	if g.hasEN {
		n++
	}
	if g.hasOP2 {
		n += 2
	}
	switch k := g.intn(n); {
	case k == 0:
		return g.op()
	case k == 1:
		return "(" + g.op() + " | " + g.op() + ")"
	case k == 2:
		return g.op() + " & SEL={i}"
	case k == 3:
		return "!" + g.op() + " & " + g.op()
	case k == 4:
		return fmt.Sprintf("OP=%d & SEL=%d", 1+g.intn(14), g.intn(4))
	case g.hasEN && k == 5:
		return g.op() + " & EN=1"
	case g.chance(1, 2):
		// Cross-decoder product: a term from each opcode group.
		return g.op() + " & " + g.op2()
	default:
		return "(" + g.op() + " | " + g.op2() + ")"
	}
}

// onlyIf returns a conditional-assembly guard (or "" when the spec carries
// no globals). Applied only to non-first elements. The global is drawn
// from the ordered globalNames list, never the map, so generation stays
// deterministic.
func (g *gen) onlyIf(spec *core.Spec) string {
	if len(spec.Globals) == 0 || !g.chance(1, 4) {
		return ""
	}
	name := g.globalNames[g.intn(len(g.globalNames))]
	if g.chance(1, 2) {
		return name
	}
	return "!" + name
}

// elements fills the element list: a west-end anchor (registers or an I/O
// port), a random middle mix, and sometimes an east-end mirrored I/O port.
// ForPads specs occasionally take a pathological pad-ring shape instead:
// a lone I/O port (the ring around a core far narrower than its decoder)
// or a core pinned at the extra-element ceiling (maximum ring perimeter
// and net fan-out).
func (g *gen) elements(spec *core.Spec) {
	extras := g.intn(g.cfg.maxExtra() + 1)
	if g.cfg.forPads() {
		switch g.intn(8) {
		case 0:
			// Minimal ring: one port, nothing else. The decoder dominates
			// the floorplan and every pad crowds the west edge.
			spec.Elements = append(spec.Elements, g.ioport("io"))
			return
		case 1:
			extras = g.cfg.maxExtra()
		}
	}
	// West end: an I/O port one time in five, a register bank otherwise.
	if g.chance(1, 5) {
		spec.Elements = append(spec.Elements, g.ioport("io"))
	} else {
		spec.Elements = append(spec.Elements, core.ElementSpec{
			Kind: "registers", Name: "r",
			Params: map[string]string{
				"count": fmt.Sprint(1 + g.intn(3)),
				"ld":    g.guard(), "rd": g.guard(),
			},
		})
	}
	for i := 0; i < extras; i++ {
		e := g.middleElement(fmt.Sprintf("e%d", i), spec)
		e.OnlyIf = g.onlyIf(spec)
		spec.Elements = append(spec.Elements, e)
	}
	// East end: a mirrored I/O port, only for SkipPads targets (Pass 3
	// rejects east-side pads on a core narrower than the decoder) and only
	// when the west end is not already a port.
	if !g.cfg.forPads() && spec.Elements[0].Kind != "ioport" && g.chance(1, 6) {
		spec.Elements = append(spec.Elements, g.ioport("oe"))
	}
}

func (g *gen) ioport(name string) core.ElementSpec {
	classes := []string{"input", "output", "io"}
	return core.ElementSpec{
		Kind: "ioport", Name: name,
		Params: map[string]string{
			"io":    g.op(),
			"class": classes[g.intn(len(classes))],
		},
	}
}

func (g *gen) middleElement(name string, spec *core.Spec) core.ElementSpec {
	switch g.intn(6) {
	case 0:
		ops := []string{"add", "and", "or", "xor", "nand"}
		return core.ElementSpec{
			Kind: "alu", Name: name,
			Params: map[string]string{
				"lda": g.op(), "ldb": g.op(), "rd": g.op(),
				"op": ops[g.intn(len(ops))],
			},
		}
	case 1:
		return core.ElementSpec{
			Kind: "shifter", Name: name,
			Params: map[string]string{"ld": g.op(), "rd": g.op()},
		}
	case 2:
		maxBits := spec.DataWidth
		if maxBits > 8 {
			maxBits = 8
		}
		return core.ElementSpec{
			Kind: "const", Name: name,
			Params: map[string]string{
				"value": fmt.Sprint(g.intn(1 << maxBits)),
				"rd":    g.op(),
			},
		}
	case 3:
		return core.ElementSpec{
			Kind: "xfer", Name: name,
			Params: map[string]string{"x": g.op()},
		}
	case 4:
		p := map[string]string{"ld": g.guard(), "rd": g.guard()}
		if g.chance(1, 3) {
			p["count"] = fmt.Sprint(1 + g.intn(2))
		}
		return core.ElementSpec{Kind: "dualreg", Name: name, Params: p}
	default:
		p := map[string]string{"ld": g.guard(), "rd": g.guard()}
		if g.chance(1, 2) {
			p["bus"] = "B"
		}
		if g.chance(1, 3) {
			p["count"] = fmt.Sprint(1 + g.intn(3))
		}
		return core.ElementSpec{Kind: "registers", Name: name, Params: p}
	}
}

// buses leaves half the specs on the default two full-length buses and
// segments the rest: each of the two slots is partitioned into covering
// intervals with unique names, so every element still sees two buses (the
// simulation models require their bus nets to exist) while the planner's
// slot assignment, precharge insertion, and segment naming all vary.
// Ranges index the post-conditional-assembly element list, so the
// partition covers the enabled-element count — computable here because
// the globals' values are fixed at generation time.
func (g *gen) buses(spec *core.Spec) {
	if !g.explicitBuses {
		return // default buses A and B
	}
	n := 0
	for _, e := range spec.Elements {
		if elementEnabled(&e, spec.Globals) {
			n++
		}
	}
	names := []string{"A", "B", "C", "D", "E", "F"}
	next := 0
	addPartition := func(parts int) {
		if parts > n {
			parts = n
		}
		// Random ascending cut points partition [0, n-1] into parts
		// intervals.
		cuts := make([]int, 0, parts-1)
		for len(cuts) < parts-1 {
			c := 1 + g.intn(n-1)
			dup := false
			for _, p := range cuts {
				if p == c {
					dup = true
				}
			}
			if !dup {
				cuts = append(cuts, c)
			}
		}
		for i := 0; i < len(cuts); i++ {
			for j := i + 1; j < len(cuts); j++ {
				if cuts[j] < cuts[i] {
					cuts[i], cuts[j] = cuts[j], cuts[i]
				}
			}
		}
		from := 0
		for _, c := range append(cuts, n) {
			to := c - 1
			if c == n && g.chance(1, 2) {
				to = -1 // exercise the run-to-the-end form
			}
			spec.Buses = append(spec.Buses, bus.Spec{Name: names[next], From: from, To: to})
			next++
			from = c
		}
	}
	addPartition(1 + g.intn(2)) // slot one: 1..2 segments
	addPartition(1 + g.intn(3)) // slot two: 1..3 segments
}

// elementEnabled mirrors the compiler's conditional-assembly evaluation:
// an element with an OnlyIf guard is assembled only when the named global
// has the wanted value.
func elementEnabled(e *core.ElementSpec, globals map[string]bool) bool {
	if e.OnlyIf == "" {
		return true
	}
	name, want := e.OnlyIf, true
	if name[0] == '!' {
		name, want = name[1:], false
	}
	return globals[name] == want
}
