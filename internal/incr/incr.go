// Package incr is the incremental compiler's content-addressed artifact
// store. Where internal/cache memoizes whole compilations (spec in, mask
// set out), incr works at the paper's natural reuse boundary — the
// procedural cell. Each Pass 1 unit (an element's generated columns, a
// cell's stretch result) and each downstream pass product (the decoder, the
// pad ring) is keyed by a SHA-256 over everything that can change it:
// element kind and parameters, the voted globals that reach it (pitch and
// rail widening), its bus context, and core.Version. An edited spec then
// reuses every unchanged artifact and pays only for the delta.
//
// Entries live in a byte-budgeted in-memory LRU. Artifacts whose types
// survive serialization (stretched cells: all-exported leaves) may also be
// written through to an optional disk layer that mirrors internal/cache's
// layout — one file per hex key, written atomically — so a restarted daemon
// warms up from disk.
//
// Keys carry a second identity, the group: the stable name of the slot the
// artifact fills ("gen:<chip>:<elem>", "st:<cell-id>", ...). Putting a new
// key under an occupied group is an invalidation — the previous variant is
// evicted eagerly and counted — which is how "a one-line edit invalidated
// exactly these cells" becomes an observable number.
//
// A *Store travels in a context.Context (WithStore/FromContext), so the
// three passes consult it without signature changes; every method is safe
// on a nil *Store, and a nil store reproduces the uncached behavior
// exactly.
package incr

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"
)

// Key returns the content address for one artifact: a hex SHA-256 over the
// parts, NUL-separated so adjacent parts cannot alias ("ab","c" vs
// "a","bc"). Callers put core.Version first so a compiler upgrade
// invalidates every artifact at once.
func Key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Counters is a snapshot of the store's activity.
type Counters struct {
	// Hits and Misses count Get outcomes (a disk hit is also a hit).
	Hits, Misses int64
	// Evictions counts entries dropped by the LRU byte budget.
	Evictions int64
	// Invalidations counts entries displaced by a new variant of their
	// group — the artifacts a spec edit actually dirtied.
	Invalidations int64
	// DiskHits counts Gets answered by the disk layer.
	DiskHits int64
	// Entries and Bytes describe the resident memory layer.
	Entries int
	Bytes   int64
}

// Store is the artifact store. The zero value is not usable; use New. A
// nil *Store is valid everywhere and behaves as "no caching".
type Store struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List // front = most recent; values are *entry
	byKey    map[string]*list.Element
	// byGroup maps a group to its current key, so a Put under an occupied
	// group can evict the stale variant and count the invalidation.
	byGroup map[string]string

	disk *diskStore // nil when no directory is configured

	hits, misses, evictions, invalidations, diskHits atomic.Int64
}

type entry struct {
	key   string
	group string
	val   any
	cost  int64
}

// New returns a store bounded to maxBytes of artifact cost in memory
// (maxBytes <= 0 selects 64 MiB). dir, when non-empty, enables the on-disk
// layer rooted there (created if needed).
func New(maxBytes int64, dir string) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	s := &Store{
		maxBytes: maxBytes,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),
		byGroup:  make(map[string]string),
	}
	if dir != "" {
		ds, err := newDiskStore(dir)
		if err != nil {
			return nil, err
		}
		s.disk = ds
	}
	return s, nil
}

// Get looks key up in the memory layer. The returned artifact is shared —
// callers must treat it as immutable (clone what they intend to mutate).
// Nil-safe: a nil store always misses without counting.
func (s *Store) Get(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
		v := el.Value.(*entry).val
		s.mu.Unlock()
		s.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	s.misses.Add(1)
	return nil, false
}

// GetDurable is Get with a disk fallback: on a memory miss it consults the
// disk layer and, when the blob is present, decodes it via decode (which
// returns the artifact and its memory cost) and promotes it into the
// memory layer under group. Decode failures are treated as misses and the
// blob is dropped. Nil-safe.
func (s *Store) GetDurable(group, key string, decode func([]byte) (any, int64, error)) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
		v := el.Value.(*entry).val
		s.mu.Unlock()
		s.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()

	if s.disk != nil {
		if blob, ok := s.disk.get(key); ok {
			if v, cost, err := decode(blob); err == nil {
				s.hits.Add(1)
				s.diskHits.Add(1)
				s.insert(group, key, v, cost)
				return v, true
			}
			s.disk.remove(key)
		}
	}
	s.misses.Add(1)
	return nil, false
}

// Put stores an artifact in the memory layer under (group, key), charging
// cost bytes against the LRU budget. A different key already holding the
// group is invalidated (evicted and counted). Nil-safe no-op.
func (s *Store) Put(group, key string, val any, cost int64) {
	if s == nil {
		return
	}
	s.insert(group, key, val, cost)
}

// PutDurable is Put with disk write-through: encode renders the artifact
// to the blob stored on disk (best effort — disk errors never fail a
// compile). Without a disk layer it is exactly Put. Nil-safe no-op.
func (s *Store) PutDurable(group, key string, val any, cost int64, encode func(any) ([]byte, error)) {
	if s == nil {
		return
	}
	s.insert(group, key, val, cost)
	if s.disk != nil {
		if blob, err := encode(val); err == nil {
			s.disk.put(key, blob)
		}
	}
}

func (s *Store) insert(group, key string, val any, cost int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A new variant displacing the group's current entry is the signal a
	// spec edit dirtied this slot; the stale artifact can never be asked
	// for again by this group, so evict it eagerly.
	if group != "" {
		if old, ok := s.byGroup[group]; ok && old != key {
			if el, ok := s.byKey[old]; ok {
				s.removeLocked(el)
				s.invalidations.Add(1)
			}
		}
		s.byGroup[group] = key
	}
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*entry)
		s.bytes += cost - e.cost
		e.val, e.cost, e.group = val, cost, group
		s.lru.MoveToFront(el)
	} else {
		s.byKey[key] = s.lru.PushFront(&entry{key: key, group: group, val: val, cost: cost})
		s.bytes += cost
	}
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		back := s.lru.Back()
		s.removeLocked(back)
		s.evictions.Add(1)
	}
}

// removeLocked drops an entry and, when it is its group's current variant,
// the group pointer with it. Caller holds s.mu.
func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.lru.Remove(el)
	delete(s.byKey, e.key)
	s.bytes -= e.cost
	if e.group != "" && s.byGroup[e.group] == e.key {
		delete(s.byGroup, e.group)
	}
}

// Counters snapshots the activity counters. Nil-safe (all zero).
func (s *Store) Counters() Counters {
	if s == nil {
		return Counters{}
	}
	s.mu.Lock()
	entries, bytes := s.lru.Len(), s.bytes
	s.mu.Unlock()
	return Counters{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Evictions:     s.evictions.Load(),
		Invalidations: s.invalidations.Load(),
		DiskHits:      s.diskHits.Load(),
		Entries:       entries,
		Bytes:         bytes,
	}
}

// HitRatio reports hits/(hits+misses), 0 before any traffic. Nil-safe.
func (s *Store) HitRatio() float64 {
	if s == nil {
		return 0
	}
	h, m := float64(s.hits.Load()), float64(s.misses.Load())
	if h+m == 0 {
		return 0
	}
	return h / (h + m)
}

// ctxKey is the context key type for a *Store (unexported, collision-free).
type ctxKey struct{}

// WithStore attaches the artifact store to the context for the compiler
// passes to consult.
func WithStore(ctx context.Context, s *Store) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the attached store, or nil (every method of which
// no-ops into uncached behavior) when the context carries none.
func FromContext(ctx context.Context) *Store {
	s, _ := ctx.Value(ctxKey{}).(*Store)
	return s
}
