package incr

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// diskStore is the persistent artifact layer: one blob file per key,
// written atomically (temp file + rename) so a crashed daemon never leaves
// a half-written artifact that a restart would decode. The layout mirrors
// internal/cache's disk layer — flat directory, hex-key filenames — with a
// small self-identifying header instead of a JSON key field (the payload
// is an opaque gob blob, not JSON).
type diskStore struct {
	dir string
}

// magic heads every blob file; the key after it ties the payload to its
// content address so a renamed or corrupted file cannot be served.
const magic = "incr1\n"

func newDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("incr dir: %w", err)
	}
	return &diskStore{dir: dir}, nil
}

func (d *diskStore) path(key string) (string, bool) {
	// Keys are hex SHA-256; anything else is refused rather than used as a
	// path component.
	if len(key) != 64 || strings.IndexFunc(key, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) >= 0 {
		return "", false
	}
	return filepath.Join(d.dir, key+".bin"), true
}

func (d *diskStore) get(key string) ([]byte, bool) {
	p, ok := d.path(key)
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	want := []byte(magic + key + "\n")
	if !bytes.HasPrefix(data, want) {
		// Corrupt or mismatched entry: drop it so it cannot be served again.
		os.Remove(p)
		return nil, false
	}
	return data[len(want):], true
}

func (d *diskStore) put(key string, blob []byte) error {
	p, ok := d.path(key)
	if !ok {
		return fmt.Errorf("incr: invalid key %q", key)
	}
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write([]byte(magic + key + "\n")); err == nil {
		_, err = tmp.Write(blob)
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

func (d *diskStore) remove(key string) {
	if p, ok := d.path(key); ok {
		os.Remove(p)
	}
}
