package incr

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestKeyPartsDoNotAlias pins the NUL separation: adjacent parts must not
// concatenate into the same digest.
func TestKeyPartsDoNotAlias(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal(`Key("ab","c") == Key("a","bc"): parts alias`)
	}
	if Key("a") == Key("a", "") {
		t.Fatal(`Key("a") == Key("a",""): part count invisible`)
	}
	if Key("x") != Key("x") {
		t.Fatal("Key is not deterministic")
	}
}

// TestLRUEvictionOrder pins the byte budget's eviction order: least
// recently used first, with a Get refreshing recency.
func TestLRUEvictionOrder(t *testing.T) {
	s, err := New(300, "")
	if err != nil {
		t.Fatal(err)
	}
	ka, kb, kc := Key("a"), Key("b"), Key("c")
	s.Put("ga", ka, "a", 100)
	s.Put("gb", kb, "b", 100)
	s.Put("gc", kc, "c", 100)
	// Touch a so b becomes the LRU victim.
	if _, ok := s.Get(ka); !ok {
		t.Fatal("a missing before eviction")
	}
	s.Put("gd", Key("d"), "d", 100)
	if _, ok := s.Get(kb); ok {
		t.Fatal("b survived: eviction was not least-recently-used")
	}
	for _, k := range []string{ka, kc} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("recently used entry %s evicted", k)
		}
	}
	c := s.Counters()
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
	if c.Bytes != 300 || c.Entries != 3 {
		t.Fatalf("bytes/entries = %d/%d, want 300/3", c.Bytes, c.Entries)
	}
}

// TestOversizeEntryKeepsNewest pins the budget loop's floor: an entry
// larger than the whole budget still resides (alone) rather than thrashing.
func TestOversizeEntryKeepsNewest(t *testing.T) {
	s, _ := New(100, "")
	s.Put("g", Key("big"), "big", 1000)
	if _, ok := s.Get(Key("big")); !ok {
		t.Fatal("oversize entry not resident")
	}
	if c := s.Counters(); c.Entries != 1 {
		t.Fatalf("entries = %d, want 1", c.Entries)
	}
}

// TestGroupInvalidation pins the variant semantics: a Put of a new key
// under an occupied group evicts the stale variant and counts it as an
// invalidation, not an eviction.
func TestGroupInvalidation(t *testing.T) {
	s, _ := New(1<<20, "")
	old, new_ := Key("v1"), Key("v2")
	s.Put("gen:chip:0:io", old, "v1", 10)
	s.Put("gen:chip:0:io", new_, "v2", 10)
	if _, ok := s.Get(old); ok {
		t.Fatal("stale variant still resident after group displacement")
	}
	if _, ok := s.Get(new_); !ok {
		t.Fatal("new variant missing")
	}
	c := s.Counters()
	if c.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", c.Invalidations)
	}
	if c.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0 (displacement is an invalidation)", c.Evictions)
	}
	// Re-putting the same key under the same group is an update, not an
	// invalidation.
	s.Put("gen:chip:0:io", new_, "v2'", 10)
	if c := s.Counters(); c.Invalidations != 1 {
		t.Fatalf("same-key re-put counted as invalidation (%d)", c.Invalidations)
	}
}

// TestVersionBumpInvalidatesEverything pins the compiler-upgrade story:
// keys carry the version as their first part, so a bump misses every
// group and displaces every entry on re-put.
func TestVersionBumpInvalidatesEverything(t *testing.T) {
	s, _ := New(1<<20, "")
	groups := []string{"gen:c:0:io", "gen:c:1:r", "st:abc/cell", "p2:c", "p3:c"}
	for _, g := range groups {
		s.Put(g, Key("bristleblocks-5", g), g+"@5", 10)
	}
	// After the bump every lookup under the new version misses...
	for _, g := range groups {
		if _, ok := s.Get(Key("bristleblocks-6", g)); ok {
			t.Fatalf("group %s hit across a version bump", g)
		}
	}
	// ...and every re-put displaces the old variant.
	for _, g := range groups {
		s.Put(g, Key("bristleblocks-6", g), g+"@6", 10)
	}
	c := s.Counters()
	if int(c.Invalidations) != len(groups) {
		t.Fatalf("invalidations = %d, want %d (one per group)", c.Invalidations, len(groups))
	}
	for _, g := range groups {
		if _, ok := s.Get(Key("bristleblocks-5", g)); ok {
			t.Fatalf("stale version of %s still resident", g)
		}
	}
}

// TestNilStoreIsInert pins the nil-store contract every call site relies
// on: all methods are safe and report nothing.
func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	if _, ok := s.GetDurable("g", "k", nil); ok {
		t.Fatal("nil store durable hit")
	}
	s.Put("g", "k", "v", 1)
	s.PutDurable("g", "k", "v", 1, nil)
	if c := s.Counters(); c != (Counters{}) {
		t.Fatalf("nil store counters = %+v", c)
	}
	if r := s.HitRatio(); r != 0 {
		t.Fatalf("nil store hit ratio = %v", r)
	}
}

func encStr(v any) ([]byte, error)        { return []byte(v.(string)), nil }
func decStr(b []byte) (any, int64, error) { return string(b), int64(len(b)) + 1, nil }

// TestDiskRoundTrip pins the durable layer: a write-through artifact
// survives into a fresh store rooted at the same directory, counted as a
// disk hit and promoted into memory.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := Key("stretch", "cell")

	s1, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	s1.PutDurable("st:cell", key, "payload", 8, encStr)

	s2, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s2.GetDurable("st:cell", key, decStr)
	if !ok || v.(string) != "payload" {
		t.Fatalf("disk round trip: got %v, %v", v, ok)
	}
	c := s2.Counters()
	if c.DiskHits != 1 || c.Hits != 1 {
		t.Fatalf("disk/total hits = %d/%d, want 1/1", c.DiskHits, c.Hits)
	}
	// Promotion: the second Get is a pure memory hit.
	if _, ok := s2.GetDurable("st:cell", key, decStr); !ok {
		t.Fatal("promoted entry missing")
	}
	if c := s2.Counters(); c.DiskHits != 1 {
		t.Fatalf("disk hits after promotion = %d, want 1", c.DiskHits)
	}
}

// TestDiskRejectsCorruptBlob pins the self-identifying header: a tampered
// file is a miss and is removed rather than served.
func TestDiskRejectsCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	key := Key("x")
	s, _ := New(1<<20, dir)
	s.PutDurable("g", key, "good", 4, encStr)

	p := filepath.Join(dir, key+".bin")
	if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, _ := New(1<<20, dir)
	if _, ok := fresh.GetDurable("g", key, decStr); ok {
		t.Fatal("corrupt blob served")
	}
	if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt blob not removed")
	}
}

// TestDiskDecodeFailureDropsBlob pins the decode error path: a blob the
// codec rejects is treated as a miss and dropped.
func TestDiskDecodeFailureDropsBlob(t *testing.T) {
	dir := t.TempDir()
	key := Key("y")
	s, _ := New(1<<20, dir)
	s.PutDurable("g", key, "data", 4, encStr)

	fresh, _ := New(1<<20, dir)
	bad := func([]byte) (any, int64, error) { return nil, 0, errors.New("bad codec") }
	if _, ok := fresh.GetDurable("g", key, bad); ok {
		t.Fatal("undecodable blob served")
	}
	if _, err := os.Stat(filepath.Join(dir, key+".bin")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("undecodable blob not removed")
	}
}

// TestDiskRefusesNonHexKeys pins the path guard: only 64-hex keys become
// filenames.
func TestDiskRefusesNonHexKeys(t *testing.T) {
	d := &diskStore{dir: t.TempDir()}
	for _, k := range []string{"", "short", "../../etc/passwd", Key("ok")[:63] + "G"} {
		if _, ok := d.path(k); ok {
			t.Fatalf("key %q accepted as a path", k)
		}
	}
	if _, ok := d.path(Key("ok")); !ok {
		t.Fatal("valid key refused")
	}
}

// TestConcurrentAccess drives the store from 32 goroutines mixing hits,
// misses, group displacements, and evictions — the Pass 1 worker-pool
// shape — under -race.
func TestConcurrentAccess(t *testing.T) {
	s, _ := New(4096, t.TempDir())
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				group := fmt.Sprintf("gen:c:%d", i%16)
				key := Key("v", group, fmt.Sprintf("%d", (g+i)%4))
				if _, ok := s.Get(key); !ok {
					s.Put(group, key, i, 64)
				}
				dkey := Key("st", fmt.Sprintf("%d", i%8))
				if _, ok := s.GetDurable("st:"+dkey[:8], dkey, decStr); !ok {
					s.PutDurable("st:"+dkey[:8], dkey, "cell", 64, encStr)
				}
				s.Counters()
				s.HitRatio()
			}
		}(g)
	}
	wg.Wait()
	c := s.Counters()
	if c.Bytes > 4096 {
		t.Fatalf("budget exceeded after concurrent load: %d bytes", c.Bytes)
	}
	if c.Hits == 0 || c.Misses == 0 {
		t.Fatalf("degenerate traffic: %+v", c)
	}
	if r := s.HitRatio(); r <= 0 || r >= 1 {
		t.Fatalf("hit ratio = %v, want in (0,1)", r)
	}
}
