package cif

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/mask"
)

// TestQuickRoundTrip: any randomly generated cell hierarchy survives a
// write/parse cycle with its flattened geometry intact.
func TestQuickRoundTrip(t *testing.T) {
	type boxSpec struct {
		L          uint8
		X, Y, W, H int16
	}
	f := func(boxes []boxSpec, tx, ty int16, orient uint8) bool {
		leaf := mask.NewCell("leaf")
		n := 0
		for _, b := range boxes {
			w := geom.Coord(b.W%200) + 2
			h := geom.Coord(b.H%200) + 2
			// Even coordinates: CIF boxes encode center*2; odd sizes write
			// as polygons, which also round-trip, so mix both.
			r := geom.R(geom.Coord(b.X%500), geom.Coord(b.Y%500),
				geom.Coord(b.X%500)+w, geom.Coord(b.Y%500)+h)
			ls := layer.All()
			leaf.AddBox(ls[int(b.L)%len(ls)], r)
			n++
		}
		if n == 0 {
			leaf.AddBox(layer.Metal, geom.R(0, 0, 8, 8))
		}
		top := mask.NewCell("top")
		o := geom.Orient(orient % 8)
		top.PlaceNamed("i0", leaf, geom.At(o, geom.Coord(tx%1000), geom.Coord(ty%1000)))

		var buf bytes.Buffer
		if err := Write(&buf, top, DefaultLambdaCentimicrons); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("parse: %v\n%s", err, buf.String())
			return false
		}
		want := rectSet(top)
		got := rectSet(back.Top)
		if want != got {
			t.Logf("flat geometry differs:\nwant %s\ngot  %s", want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// rectSet canonicalizes a cell's flattened per-layer rectangle multiset.
func rectSet(c *mask.Cell) string {
	var sb bytes.Buffer
	for _, l := range layer.All() {
		rs := c.RectsOnLayer(l)
		area := int64(0)
		bb := geom.Rect{}
		for i, r := range rs {
			area += r.Area()
			if i == 0 {
				bb = r
			} else {
				bb = bb.Union(r)
			}
		}
		fmt.Fprintf(&sb, "%s:%d:%v ", l.Name(), area, bb)
	}
	return sb.String()
}
