package cif

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"

	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/mask"
)

func buildSample() *mask.Cell {
	leaf := mask.NewCell("leaf")
	leaf.AddBox(layer.Diff, geom.R(0, 0, 8, 8))
	leaf.AddBox(layer.Poly, geom.R(2, -4, 6, 12))
	leaf.AddWire(layer.Metal, 12, geom.Pt(0, 4), geom.Pt(40, 4), geom.Pt(40, 40))
	leaf.AddLabel("in", geom.Pt(0, 4), layer.Metal)

	mid := mask.NewCell("mid")
	mid.Place(leaf, geom.Translate(0, 0))
	mid.Place(leaf, geom.At(geom.MX, 0, 100))
	mid.Place(leaf, geom.At(geom.R90, 80, 0))

	top := mask.NewCell("top")
	top.Place(mid, geom.Translate(0, 0))
	top.Place(mid, geom.At(geom.R180, 300, 300))
	top.AddBox(layer.Glass, geom.R(0, 0, 48, 48))
	return top
}

// flatSignature summarizes flattened geometry for equality checks that are
// insensitive to primitive kind (wire vs box vs polygon rects).
func flatSignature(c *mask.Cell) []string {
	var sig []string
	c.Flatten(func(l layer.Layer, r geom.Rect) {
		sig = append(sig, l.Name()+r.String())
	})
	sort.Strings(sig)
	return sig
}

func TestRoundTrip(t *testing.T) {
	top := buildSample()
	var buf bytes.Buffer
	if err := Write(&buf, top, DefaultLambdaCentimicrons); err != nil {
		t.Fatalf("Write: %v", err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Top.Name != "top" {
		t.Errorf("top name = %q", f.Top.Name)
	}
	if f.LambdaCentimicrons != DefaultLambdaCentimicrons {
		t.Errorf("lambda = %d", f.LambdaCentimicrons)
	}
	if got, want := flatSignature(f.Top), flatSignature(top); !reflect.DeepEqual(got, want) {
		t.Errorf("flattened geometry differs\n got %d rects\nwant %d rects", len(got), len(want))
	}
	// Hierarchy preserved: three distinct cells.
	if got := len(f.Cells); got != 3 {
		t.Errorf("parsed %d cells, want 3", got)
	}
}

func TestRoundTripAllOrientations(t *testing.T) {
	leaf := mask.NewCell("leaf")
	leaf.AddBox(layer.Diff, geom.R(0, 0, 4, 10)) // asymmetric so orientation matters
	for _, o := range []geom.Orient{geom.R0, geom.R90, geom.R180, geom.R270, geom.MX, geom.MX90, geom.MY, geom.MY90} {
		top := mask.NewCell("top")
		top.Place(leaf, geom.At(o, 32, -16))
		var buf bytes.Buffer
		if err := Write(&buf, top, 250); err != nil {
			t.Fatalf("%v: Write: %v", o, err)
		}
		f, err := Parse(&buf)
		if err != nil {
			t.Fatalf("%v: Parse: %v", o, err)
		}
		if got, want := flatSignature(f.Top), flatSignature(top); !reflect.DeepEqual(got, want) {
			t.Errorf("orientation %v does not round-trip: got %v want %v", o, got, want)
		}
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	top := mask.NewCell("top")
	top.AddBox(layer.Metal, geom.R(0, 0, 12, 12))
	top.AddLabel("vdd", geom.Pt(6, 6), layer.Metal)
	var buf bytes.Buffer
	if err := Write(&buf, top, 250); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Top.Labels) != 1 || f.Top.Labels[0].Text != "vdd" ||
		f.Top.Labels[0].At != geom.Pt(6, 6) || f.Top.Labels[0].Layer != layer.Metal {
		t.Errorf("labels = %+v", f.Top.Labels)
	}
}

func TestOddBoxAsPolygon(t *testing.T) {
	top := mask.NewCell("top")
	top.AddBox(layer.Poly, geom.R(0, 0, 5, 3)) // odd extents: no exact center
	var buf bytes.Buffer
	if err := Write(&buf, top, 250); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "P 0 0 5 0 5 3 0 3;") {
		t.Errorf("odd box should be emitted as polygon:\n%s", text)
	}
	f, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Top.AreaByLayer()[layer.Poly]; got != 15 {
		t.Errorf("area = %d, want 15", got)
	}
}

func TestParseHandWrittenCIF(t *testing.T) {
	src := `(hand written example);
DS 1 125 2;
9 inv;
L ND; B 4 12 2 6;
L NP; W 2 -2 6 6 6;
DF;
DS 2 125 2;
9 pair;
C 1 T 0 0;
C 1 M X T 20 0;
DF;
C 2;
E
`
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Top.Name != "pair" {
		t.Errorf("top = %q", f.Top.Name)
	}
	if f.LambdaCentimicrons != 250 {
		t.Errorf("lambda = %d", f.LambdaCentimicrons)
	}
	rects := f.Top.FlatRects()
	if len(rects) != 4 { // 2 instances x (1 box + 1 wire segment)
		t.Fatalf("flat rects = %d", len(rects))
	}
	bb := f.Top.BBox()
	if bb.MinX > -3 || bb.MaxX < 20 {
		t.Errorf("bbox = %v", bb)
	}
}

func TestParseNoTopCall(t *testing.T) {
	src := `DS 1 1 1; L ND; B 2 2 1 1; DF; DS 2 1 1; C 1 T 4 0; DF; E`
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.Top.Name != "sym2" {
		t.Errorf("uncalled symbol should be top, got %q", f.Top.Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`DS 1 1 1; L XX; DF; E`,                 // unknown layer
		`DS 1 1 1; DS 2 1 1; DF; DF; E`,         // nested DS
		`DF; E`,                                 // DF outside DS
		`DS 1 1 1; L ND; B 2 2; DF; E`,          // short box
		`DS 1 1 1; C 9 T 0 0; DF; C 1; E`,       // undefined call
		`DS 1 1 1; L ND; B 2 2 1 1;`,            // unterminated DS
		`(unterminated comment`,                 // comment error
		`DS 1 1 1; L ND; FOO 1 2; DF; E`,        // unknown command
		`DS 1 1 1; C 1 R 1 1 T 0 0; DF; C 1; E`, // non-Manhattan rotation
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestWriteRejectsBadLambda(t *testing.T) {
	if err := Write(&bytes.Buffer{}, mask.NewCell("x"), 0); err == nil {
		t.Error("lambda 0 should be rejected")
	}
}

func TestUnknownExtensionSkipped(t *testing.T) {
	src := `DS 1 1 1; 42 whatever 1 2 3; L ND; B 2 2 1 1; DF; C 1; E`
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("extensions should be skipped: %v", err)
	}
	if len(f.Top.Boxes) != 1 {
		t.Error("box lost")
	}
}
