// Package cif reads and writes Caltech Intermediate Form 2.0, the mask
// interchange format used at Caltech in the Bristle Blocks era. The writer
// emits the full cell hierarchy (children before parents) with exact
// rational scaling from the quarter-lambda grid to centimicrons; the parser
// reads the same dialect back, so layouts round-trip exactly.
package cif

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/mask"
)

// DefaultLambdaCentimicrons is the default physical lambda: 250 cµm = 2.5 µm,
// the typical late-1970s nMOS value.
const DefaultLambdaCentimicrons = 250

// orientOps maps each orientation to the CIF transform op string that
// reproduces it. CIF "M X" negates x (our geom.MY); "M Y" negates y (our
// geom.MX); "R a b" points the symbol's +x axis along (a,b).
var orientOps = map[geom.Orient]string{
	geom.R0:   "",
	geom.R90:  " R 0 1",
	geom.R180: " R -1 0",
	geom.R270: " R 0 -1",
	geom.MX:   " M Y",
	geom.MY:   " M X",
	geom.MX90: " M Y R 0 1",
	geom.MY90: " M X R 0 1",
}

// Write emits the hierarchy rooted at top as a CIF 2.0 file. Coordinates are
// written in quarter-lambda quanta with a DS scale factor converting them to
// centimicrons using the given physical lambda.
func Write(w io.Writer, top *mask.Cell, lambdaCentimicrons int) error {
	if lambdaCentimicrons <= 0 {
		return fmt.Errorf("cif: non-positive lambda %d", lambdaCentimicrons)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "(Bristle Blocks CIF output; lambda = %d centimicrons);\n", lambdaCentimicrons)

	// Scale a/b: quanta -> centimicrons. Reduce the fraction.
	a, b := lambdaCentimicrons, int(geom.Lambda)
	g := gcd(a, b)
	a, b = a/g, b/g

	cells := top.CollectCells()
	num := make(map[*mask.Cell]int, len(cells))
	for i, c := range cells {
		num[c] = i + 1
	}
	for _, c := range cells {
		fmt.Fprintf(bw, "DS %d %d %d;\n", num[c], a, b)
		fmt.Fprintf(bw, "9 %s;\n", sanitizeName(c.Name))
		writeCellBody(bw, c, num)
		fmt.Fprintf(bw, "DF;\n")
	}
	fmt.Fprintf(bw, "C %d;\n", num[top])
	fmt.Fprintf(bw, "E\n")
	return bw.Flush()
}

func writeCellBody(bw *bufio.Writer, c *mask.Cell, num map[*mask.Cell]int) {
	cur := layer.NumLayers // sentinel: no layer selected yet
	setLayer := func(l layer.Layer) {
		if l != cur {
			fmt.Fprintf(bw, "L %s;\n", l.CIF())
			cur = l
		}
	}
	for _, b := range c.Boxes {
		setLayer(b.Layer)
		r := b.R
		// CIF boxes are width height centerX centerY; to keep odd extents
		// exact we double all coordinates in the box command... but CIF has
		// no such convention, so instead we require even centers: quanta
		// resolution (4/lambda) makes every half-lambda center integral,
		// and the library only uses whole-quantum geometry. Odd-sized boxes
		// are emitted as polygons to stay exact.
		w, h := r.W(), r.H()
		cx2, cy2 := r.MinX+r.MaxX, r.MinY+r.MaxY
		if cx2%2 == 0 && cy2%2 == 0 {
			fmt.Fprintf(bw, "B %d %d %d %d;\n", w, h, cx2/2, cy2/2)
		} else {
			fmt.Fprintf(bw, "P %d %d %d %d %d %d %d %d;\n",
				r.MinX, r.MinY, r.MaxX, r.MinY, r.MaxX, r.MaxY, r.MinX, r.MaxY)
		}
	}
	for _, wr := range c.Wires {
		setLayer(wr.Layer)
		fmt.Fprintf(bw, "W %d", wr.Width)
		for _, p := range wr.Path {
			fmt.Fprintf(bw, " %d %d", p.X, p.Y)
		}
		fmt.Fprintf(bw, ";\n")
	}
	for _, pg := range c.Polys {
		setLayer(pg.Layer)
		fmt.Fprintf(bw, "P")
		for _, p := range pg.Pts {
			fmt.Fprintf(bw, " %d %d", p.X, p.Y)
		}
		fmt.Fprintf(bw, ";\n")
	}
	for _, lb := range c.Labels {
		fmt.Fprintf(bw, "94 %s %d %d %s;\n", sanitizeName(lb.Text), lb.At.X, lb.At.Y, lb.Layer.CIF())
	}
	for _, in := range c.Insts {
		ops, ok := orientOps[in.T.Orient]
		if !ok {
			ops = ""
		}
		fmt.Fprintf(bw, "C %d%s T %d %d;\n", num[in.Cell], ops, in.T.Offset.X, in.T.Offset.Y)
	}
}

func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == ';':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return "unnamed"
	}
	return string(out)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// File is the result of parsing a CIF stream.
type File struct {
	// Top is the root cell (the last top-level call, or the last symbol
	// defined when the file has no top-level call).
	Top *mask.Cell
	// LambdaCentimicrons is the physical lambda recovered from the DS
	// scale factors (0 when indeterminate).
	LambdaCentimicrons int
	// Cells maps symbol numbers to cells.
	Cells map[int]*mask.Cell
}

type parseCall struct {
	sym int
	t   geom.Transform
}

type symbolDef struct {
	cell  *mask.Cell
	calls []parseCall
}

// Parse reads a CIF 2.0 stream produced by Write (plus reasonable
// hand-written CIF in the same dialect) and reconstructs the cell hierarchy.
func Parse(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	cmds, err := splitCommands(string(data))
	if err != nil {
		return nil, err
	}

	f := &File{Cells: make(map[int]*mask.Cell)}
	defs := make(map[int]*symbolDef)
	var cur *symbolDef
	var curNum int
	curLayer := layer.Layer(0)
	var topCalls []parseCall
	sawEnd := false

	for ci, cmd := range cmds {
		if sawEnd {
			return nil, fmt.Errorf("cif: command after E at #%d", ci)
		}
		fields := strings.Fields(cmd)
		if len(fields) == 0 {
			continue
		}
		op := fields[0]
		args := fields[1:]
		switch {
		case op == "DS":
			if cur != nil {
				return nil, fmt.Errorf("cif: nested DS at command #%d", ci)
			}
			if len(args) < 1 {
				return nil, fmt.Errorf("cif: DS missing symbol number")
			}
			n, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, fmt.Errorf("cif: bad DS number %q", args[0])
			}
			a, b := 1, 1
			if len(args) >= 3 {
				if a, err = strconv.Atoi(args[1]); err != nil {
					return nil, fmt.Errorf("cif: bad DS scale %q", args[1])
				}
				if b, err = strconv.Atoi(args[2]); err != nil {
					return nil, fmt.Errorf("cif: bad DS scale %q", args[2])
				}
			}
			if b != 0 && a != 0 {
				// lambda = quanta-per-lambda * a / b centimicrons.
				f.LambdaCentimicrons = int(geom.Lambda) * a / b
			}
			cur = &symbolDef{cell: mask.NewCell(fmt.Sprintf("sym%d", n))}
			curNum = n
			defs[n] = cur
		case op == "DF":
			if cur == nil {
				return nil, fmt.Errorf("cif: DF outside DS at command #%d", ci)
			}
			f.Cells[curNum] = cur.cell
			cur = nil
		case op == "9":
			if cur != nil && len(args) > 0 {
				cur.cell.Name = args[0]
			}
		case op == "L":
			if len(args) != 1 {
				return nil, fmt.Errorf("cif: L wants one layer name")
			}
			l, ok := layer.ByCIF(args[0])
			if !ok {
				return nil, fmt.Errorf("cif: unknown layer %q", args[0])
			}
			curLayer = l
		case op == "B":
			if cur == nil {
				return nil, fmt.Errorf("cif: B outside DS")
			}
			ns, err := atoiAll(args)
			if err != nil || len(ns) < 4 {
				return nil, fmt.Errorf("cif: bad B command %q", cmd)
			}
			w, h, cx, cy := ns[0], ns[1], ns[2], ns[3]
			cur.cell.AddBox(curLayer, geom.R(
				geom.Coord(cx)-geom.Coord(w)/2, geom.Coord(cy)-geom.Coord(h)/2,
				geom.Coord(cx)+geom.Coord(w)-geom.Coord(w)/2, geom.Coord(cy)+geom.Coord(h)-geom.Coord(h)/2))
		case op == "W":
			if cur == nil {
				return nil, fmt.Errorf("cif: W outside DS")
			}
			ns, err := atoiAll(args)
			if err != nil || len(ns) < 3 || len(ns)%2 == 0 {
				return nil, fmt.Errorf("cif: bad W command %q", cmd)
			}
			width := geom.Coord(ns[0])
			pts := make([]geom.Point, 0, (len(ns)-1)/2)
			for i := 1; i+2 <= len(ns); i += 2 {
				pts = append(pts, geom.Pt(geom.Coord(ns[i]), geom.Coord(ns[i+1])))
			}
			cur.cell.AddWire(curLayer, width, pts...)
		case op == "P":
			if cur == nil {
				return nil, fmt.Errorf("cif: P outside DS")
			}
			ns, err := atoiAll(args)
			if err != nil || len(ns) < 8 || len(ns)%2 != 0 {
				return nil, fmt.Errorf("cif: bad P command %q", cmd)
			}
			pts := make(geom.Polygon, 0, len(ns)/2)
			for i := 0; i < len(ns); i += 2 {
				pts = append(pts, geom.Pt(geom.Coord(ns[i]), geom.Coord(ns[i+1])))
			}
			if err := cur.cell.AddPoly(curLayer, pts); err != nil {
				return nil, fmt.Errorf("cif: %w", err)
			}
		case op == "C":
			call, err := parseCallCmd(args)
			if err != nil {
				return nil, fmt.Errorf("cif: %w in %q", err, cmd)
			}
			if cur != nil {
				cur.calls = append(cur.calls, call)
			} else {
				topCalls = append(topCalls, call)
			}
		case op == "94":
			if cur == nil || len(args) < 3 {
				continue // tolerate stray labels
			}
			x, err1 := strconv.Atoi(args[1])
			y, err2 := strconv.Atoi(args[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("cif: bad 94 command %q", cmd)
			}
			lbLayer := curLayer
			if len(args) >= 4 {
				if l, ok := layer.ByCIF(args[3]); ok {
					lbLayer = l
				}
			}
			cur.cell.AddLabel(args[0], geom.Pt(geom.Coord(x), geom.Coord(y)), lbLayer)
		case op == "E":
			sawEnd = true
		case strings.HasPrefix(op, "("): // comment command
		default:
			// Unknown user extensions (0-9 prefixed) are skipped per spec.
			if _, err := strconv.Atoi(op); err == nil {
				continue
			}
			return nil, fmt.Errorf("cif: unknown command %q", cmd)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("cif: unterminated DS %d", curNum)
	}

	// Link calls.
	link := func(c *mask.Cell, calls []parseCall) error {
		for _, cl := range calls {
			target, ok := f.Cells[cl.sym]
			if !ok {
				return fmt.Errorf("cif: call to undefined symbol %d", cl.sym)
			}
			c.Place(target, cl.t)
		}
		return nil
	}
	for n, d := range defs {
		if err := link(d.cell, d.calls); err != nil {
			return nil, fmt.Errorf("symbol %d: %w", n, err)
		}
	}
	switch {
	case len(topCalls) > 0:
		if len(topCalls) == 1 && topCalls[0].t == geom.Identity {
			f.Top = f.Cells[topCalls[0].sym]
		} else {
			top := mask.NewCell("cif_top")
			if err := link(top, topCalls); err != nil {
				return nil, err
			}
			f.Top = top
		}
	case len(defs) > 0:
		// No top-level call: pick the symbol not called by any other.
		called := make(map[int]bool)
		for _, d := range defs {
			for _, cl := range d.calls {
				called[cl.sym] = true
			}
		}
		best := -1
		for n := range defs {
			if !called[n] && n > best {
				best = n
			}
		}
		if best >= 0 {
			f.Top = f.Cells[best]
		}
	}
	if f.Top == nil {
		return nil, fmt.Errorf("cif: no top cell found")
	}
	return f, nil
}

func parseCallCmd(args []string) (parseCall, error) {
	if len(args) == 0 {
		return parseCall{}, fmt.Errorf("C missing symbol number")
	}
	sym, err := strconv.Atoi(args[0])
	if err != nil {
		return parseCall{}, fmt.Errorf("bad symbol number %q", args[0])
	}
	t := geom.Identity
	i := 1
	for i < len(args) {
		switch args[i] {
		case "T":
			if i+2 >= len(args) {
				return parseCall{}, fmt.Errorf("T needs two operands")
			}
			x, e1 := strconv.Atoi(args[i+1])
			y, e2 := strconv.Atoi(args[i+2])
			if e1 != nil || e2 != nil {
				return parseCall{}, fmt.Errorf("bad T operands")
			}
			t = t.Then(geom.Translate(geom.Coord(x), geom.Coord(y)))
			i += 3
		case "M":
			if i+1 >= len(args) {
				return parseCall{}, fmt.Errorf("M needs an axis")
			}
			switch args[i+1] {
			case "X":
				t = t.Then(geom.Transform{Orient: geom.MY}) // CIF M X negates x
			case "Y":
				t = t.Then(geom.Transform{Orient: geom.MX}) // CIF M Y negates y
			default:
				return parseCall{}, fmt.Errorf("bad mirror axis %q", args[i+1])
			}
			i += 2
		case "R":
			if i+2 >= len(args) {
				return parseCall{}, fmt.Errorf("R needs two operands")
			}
			a, e1 := strconv.Atoi(args[i+1])
			b, e2 := strconv.Atoi(args[i+2])
			if e1 != nil || e2 != nil {
				return parseCall{}, fmt.Errorf("bad R operands")
			}
			var o geom.Orient
			switch {
			case a > 0 && b == 0:
				o = geom.R0
			case a == 0 && b > 0:
				o = geom.R90
			case a < 0 && b == 0:
				o = geom.R180
			case a == 0 && b < 0:
				o = geom.R270
			default:
				return parseCall{}, fmt.Errorf("non-Manhattan rotation %d %d", a, b)
			}
			t = t.Then(geom.Transform{Orient: o})
			i += 3
		default:
			return parseCall{}, fmt.Errorf("unknown transform op %q", args[i])
		}
	}
	return parseCall{sym, t}, nil
}

func atoiAll(ss []string) ([]int, error) {
	out := make([]int, len(ss))
	for i, s := range ss {
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// splitCommands breaks a CIF stream into semicolon-terminated commands with
// parenthesized comments removed.
func splitCommands(s string) ([]string, error) {
	var cmds []string
	var cur strings.Builder
	depth := 0
	for _, r := range s {
		switch {
		case r == '(':
			depth++
		case r == ')':
			if depth == 0 {
				return nil, fmt.Errorf("cif: unbalanced comment close")
			}
			depth--
		case depth > 0:
			// inside comment: drop
		case r == ';':
			cmds = append(cmds, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("cif: unterminated comment")
	}
	if tail := strings.TrimSpace(cur.String()); tail != "" {
		cmds = append(cmds, tail)
	}
	return cmds, nil
}
