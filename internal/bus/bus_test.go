package bus

import (
	"strings"
	"testing"
)

func TestTwoFullLengthBuses(t *testing.T) {
	p, err := Build([]Spec{{Name: "A", From: 0, To: -1}, {Name: "B", From: 0, To: -1}}, 5)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(p.Segments) != 2 {
		t.Fatalf("segments = %d", len(p.Segments))
	}
	if p.Segments[0].Slot == p.Segments[1].Slot {
		t.Error("overlapping buses share a slot")
	}
	for e := 0; e < 5; e++ {
		a, ok := p.SegmentFor("A", e)
		if !ok || a.To != 4 {
			t.Errorf("A missing at %d", e)
		}
		if _, ok := p.SegmentFor("B", e); !ok {
			t.Errorf("B missing at %d", e)
		}
	}
}

func TestStoppedBusReusesSlot(t *testing.T) {
	// A covers [0,2]; C covers [3,5]; B runs full length. A and C can share
	// a slot.
	p, err := Build([]Spec{
		{Name: "A", From: 0, To: 2},
		{Name: "B", From: 0, To: -1},
		{Name: "C", From: 3, To: 5},
	}, 6)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var a, c *Segment
	for i := range p.Segments {
		switch p.Segments[i].Name {
		case "A":
			a = &p.Segments[i]
		case "C":
			c = &p.Segments[i]
		}
	}
	if a.Slot != c.Slot {
		t.Errorf("A slot %v, C slot %v: should reuse", a.Slot, c.Slot)
	}
}

func TestThreeOverlappingBusesFail(t *testing.T) {
	_, err := Build([]Spec{
		{Name: "A", From: 0, To: -1},
		{Name: "B", From: 0, To: -1},
		{Name: "C", From: 2, To: 4},
	}, 6)
	if err == nil || !strings.Contains(err.Error(), "more than two buses") {
		t.Errorf("want overlap error, got %v", err)
	}
}

func TestSameNameOverlapFails(t *testing.T) {
	_, err := Build([]Spec{
		{Name: "A", From: 0, To: 3},
		{Name: "A", From: 2, To: 5},
	}, 6)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("want same-name overlap error, got %v", err)
	}
}

func TestSameNameDisjointOK(t *testing.T) {
	p, err := Build([]Spec{
		{Name: "A", From: 0, To: 2},
		{Name: "A", From: 3, To: 5},
	}, 6)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(p.Segments) != 2 {
		t.Error("restarted bus should produce two segments")
	}
}

func TestRangeValidation(t *testing.T) {
	cases := []Spec{
		{Name: "A", From: -1, To: 2},
		{Name: "A", From: 0, To: 9},
		{Name: "A", From: 3, To: 1},
		{Name: "", From: 0, To: 1},
	}
	for _, sp := range cases {
		if _, err := Build([]Spec{sp}, 4); err == nil {
			t.Errorf("spec %+v should fail", sp)
		}
	}
	if _, err := Build(nil, 0); err == nil {
		t.Error("empty core should fail")
	}
}

func TestPrechargeSites(t *testing.T) {
	p, err := Build([]Spec{
		{Name: "B", From: 0, To: -1},
		{Name: "A", From: 0, To: 2},
		{Name: "C", From: 3, To: 5},
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	sites := p.PrechargeSites()
	if len(sites) != 3 {
		t.Fatalf("sites = %d", len(sites))
	}
	// Ordered by start element.
	if sites[0].From != 0 || sites[1].From != 0 || sites[2].From != 3 {
		t.Errorf("site order wrong: %+v", sites)
	}
	if sites[2].Name != "C" {
		t.Errorf("third site = %+v", sites[2])
	}
}

func TestSlotString(t *testing.T) {
	if Upper.String() != "upper" || Lower.String() != "lower" {
		t.Error("slot names wrong")
	}
	if !strings.Contains(Slot(9).String(), "9") {
		t.Error("unknown slot name wrong")
	}
}

func TestSegmentForOutOfRange(t *testing.T) {
	p, _ := Build([]Spec{{Name: "A", From: 0, To: -1}}, 3)
	if _, ok := p.SegmentFor("A", -1); ok {
		t.Error("negative index should miss")
	}
	if _, ok := p.SegmentFor("A", 3); ok {
		t.Error("past-end index should miss")
	}
	if _, ok := p.SegmentFor("Z", 1); ok {
		t.Error("unknown bus should miss")
	}
}
