// Package bus models the chip's data buses per the paper's logical format:
// "Each of the core elements can communicate with either of two buses that
// run through the elements. These buses may run the length of the chip, or
// they may stop anywhere along the chip with new buses servicing the
// remainder of the chip ... at most two buses may run through any element."
//
// The planner assigns each declared bus to one of the two bus slots (upper
// or lower), validates the ≤2-buses-anywhere constraint, and computes the
// precharge cells the compiler must insert (one per bus segment, since
// buses are precharged during φ2).
package bus

import (
	"fmt"
	"sort"
)

// Slot is a bus track through the core.
type Slot int

const (
	// Upper is the bus track above the cell midline.
	Upper Slot = iota
	// Lower is the bus track below it.
	Lower
	// NumSlots is the number of bus tracks through each element.
	NumSlots
)

// String names the slot ("upper" or "lower").
func (s Slot) String() string {
	switch s {
	case Upper:
		return "upper"
	case Lower:
		return "lower"
	}
	return fmt.Sprintf("Slot(%d)", int(s))
}

// Spec declares one bus in the user's chip description.
type Spec struct {
	Name string
	// From and To are core element indexes (inclusive). To = -1 means the
	// bus runs to the end of the core.
	From, To int
}

// Segment is a planned bus: a spec bound to a slot with a resolved range.
type Segment struct {
	Name     string
	Slot     Slot
	From, To int // inclusive element index range
}

// Plan is the outcome of bus planning.
type Plan struct {
	Segments []Segment
	// AtElement[i] lists the segments passing through element i, indexed
	// by slot (nil when the slot is unused there).
	AtElement [][NumSlots]*Segment
}

// SegmentFor returns the segment of the named bus covering element i.
func (p *Plan) SegmentFor(name string, i int) (*Segment, bool) {
	if i < 0 || i >= len(p.AtElement) {
		return nil, false
	}
	for _, s := range p.AtElement[i] {
		if s != nil && s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Build validates the specs against a core of numElements elements and
// assigns slots. Overlapping buses take different slots; more than two
// buses over any element is an error. Two buses with the same name must
// not overlap (a name may be reused for a stopped-and-restarted bus).
func Build(specs []Spec, numElements int) (*Plan, error) {
	if numElements <= 0 {
		return nil, fmt.Errorf("bus: core has no elements")
	}
	segs := make([]Segment, len(specs))
	for i, sp := range specs {
		to := sp.To
		if to == -1 {
			to = numElements - 1
		}
		if sp.Name == "" {
			return nil, fmt.Errorf("bus: bus %d has no name", i)
		}
		if sp.From < 0 || sp.From >= numElements || to < sp.From || to >= numElements {
			return nil, fmt.Errorf("bus %s: range [%d,%d] invalid for %d elements",
				sp.Name, sp.From, sp.To, numElements)
		}
		segs[i] = Segment{Name: sp.Name, From: sp.From, To: to}
	}
	// Same-name overlap check.
	for i := range segs {
		for j := i + 1; j < len(segs); j++ {
			if segs[i].Name == segs[j].Name && segs[i].From <= segs[j].To && segs[j].From <= segs[i].To {
				return nil, fmt.Errorf("bus %s: two segments overlap at elements [%d,%d]",
					segs[i].Name, max(segs[i].From, segs[j].From), min(segs[i].To, segs[j].To))
			}
		}
	}

	// Greedy interval 2-coloring in order of start index: reuse a slot
	// whose previous occupant has ended.
	order := make([]int, len(segs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if segs[order[a]].From != segs[order[b]].From {
			return segs[order[a]].From < segs[order[b]].From
		}
		return segs[order[a]].Name < segs[order[b]].Name
	})
	slotEnd := [NumSlots]int{-1, -1} // last occupied element index per slot
	for _, idx := range order {
		s := &segs[idx]
		placed := false
		for slot := Upper; slot < NumSlots; slot++ {
			if slotEnd[slot] < s.From {
				s.Slot = slot
				slotEnd[slot] = s.To
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("bus %s: more than two buses would run through element %d",
				s.Name, s.From)
		}
	}

	plan := &Plan{Segments: segs, AtElement: make([][NumSlots]*Segment, numElements)}
	for i := range segs {
		s := &plan.Segments[i]
		for e := s.From; e <= s.To; e++ {
			if prev := plan.AtElement[e][s.Slot]; prev != nil {
				return nil, fmt.Errorf("bus: slot %v conflict at element %d between %s and %s",
					s.Slot, e, prev.Name, s.Name)
			}
			plan.AtElement[e][s.Slot] = s
		}
	}
	return plan, nil
}

// PrechargeSites returns, for each segment, the element index before which
// its precharge cell must be inserted (the start of the segment). Every
// segment needs exactly one: "bus precharge circuits must be added for
// each bus. Details like these need not be specified by the user, but are
// added by the compiler."
func (p *Plan) PrechargeSites() []Segment {
	out := append([]Segment(nil), p.Segments...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Slot < out[j].Slot
	})
	return out
}
