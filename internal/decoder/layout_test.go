package decoder

import (
	"testing"

	"bristleblocks/internal/cell"
	"bristleblocks/internal/drc"
	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/transistor"
)

func buildTestDecoder(t *testing.T, opts *Options) *Result {
	t.Helper()
	f := fmt16(t)
	res, err := Build(f, testSpecs(), opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return res
}

func TestDecoderLayoutDRC(t *testing.T) {
	res := buildTestDecoder(t, nil)
	vs := drc.Check(res.Layout.Cell.Layout, layer.MeadConway(), &drc.Options{MaxViolations: 12})
	if len(vs) != 0 {
		t.Fatalf("decoder DRC violations:\n%v", vs)
	}
}

func TestDecoderExtractionMatchesDeclared(t *testing.T) {
	res := buildTestDecoder(t, nil)
	got, err := transistor.Extract(res.Layout.Cell.Layout)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	want := res.Layout.Cell.Netlist
	if !got.Equal(want) {
		t.Fatalf("decoder netlist mismatch:\n%s", want.Diff(got))
	}
}

func TestDecoderBristles(t *testing.T) {
	res := buildTestDecoder(t, nil)
	c := res.Layout.Cell
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Microcode inputs become pad requests ("creating pad connections for
	// the inputs to the decoder").
	pads := c.BristlesBy(cell.PadReq)
	inputPads := 0
	for _, b := range pads {
		if b.PadClass == "input" {
			inputPads++
		}
	}
	if inputPads != len(res.Array.UsedInputs()) {
		t.Errorf("input pad bristles = %d, want %d", inputPads, len(res.Array.UsedInputs()))
	}
	// Clock pad requests for the buffer row.
	clocks := map[string]bool{}
	for _, b := range pads {
		if b.PadClass == "phi1" || b.PadClass == "phi2" {
			clocks[b.PadClass] = true
		}
	}
	if !clocks["phi1"] || !clocks["phi2"] {
		t.Error("clock pad requests missing")
	}
}

func TestDecoderDecodeFunction(t *testing.T) {
	res := buildTestDecoder(t, nil)
	// OP=1, EN=1 fires r0.ld in phase 1 and dup in phase 2.
	micro := uint64(1 | 1<<9)
	c1 := res.Decode(micro, 1)
	c2 := res.Decode(micro, 2)
	if !c1["r0.ld"] || c1["dup"] {
		t.Errorf("phase 1 decode wrong: %v", c1)
	}
	if c2["r0.ld"] || !c2["dup"] {
		t.Errorf("phase 2 decode wrong: %v", c2)
	}
	if c1["r0.rd"] || c1["alu.rd"] {
		t.Errorf("unselected controls active: %v", c1)
	}
}

func TestDecoderCtlChannel(t *testing.T) {
	ctlX := map[string]geom.Coord{
		"r0.ld":  geom.L(30),
		"r0.rd":  geom.L(80),
		"alu.op": geom.L(140),
		"alu.rd": geom.L(200),
		"dup":    geom.L(260),
	}
	res := buildTestDecoder(t, &Options{CtlX: ctlX})
	for name, want := range ctlX {
		if got := res.Layout.CtlX[name]; got != want {
			t.Errorf("ctl %s at %d, want %d", name, got, want)
		}
	}
	vs := drc.Check(res.Layout.Cell.Layout, layer.MeadConway(), &drc.Options{MaxViolations: 12})
	if len(vs) != 0 {
		t.Fatalf("decoder-with-channel DRC violations:\n%v", vs)
	}
	got, err := transistor.Extract(res.Layout.Cell.Layout)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if !got.Equal(res.Layout.Cell.Netlist) {
		t.Fatalf("channel broke the netlist:\n%s", res.Layout.Cell.Netlist.Diff(got))
	}
}

func TestDecoderChannelCollisionRejected(t *testing.T) {
	ctlX := map[string]geom.Coord{
		"r0.ld": geom.L(30),
		"r0.rd": geom.L(32), // 2λ apart: drops would short
	}
	f := fmt16(t)
	if _, err := Build(f, testSpecs(), &Options{CtlX: ctlX}); err == nil {
		t.Error("colliding control drops should be rejected")
	}
}

func TestDecoderSkipOptimize(t *testing.T) {
	raw := buildTestDecoder(t, &Options{SkipOptimize: true})
	opt := buildTestDecoder(t, nil)
	if len(raw.Array.Terms) <= len(opt.Array.Terms) {
		t.Errorf("unoptimized decoder should have more terms: %d vs %d",
			len(raw.Array.Terms), len(opt.Array.Terms))
	}
	if raw.Layout.Cell.Size.Area() <= opt.Layout.Cell.Size.Area() {
		t.Errorf("unoptimized decoder should be larger: %d vs %d",
			raw.Layout.Cell.Size.Area(), opt.Layout.Cell.Size.Area())
	}
	// Both decoders compute identical functions.
	for micro := uint64(0); micro < 1<<10; micro += 7 {
		for phase := 1; phase <= 2; phase++ {
			a, b := raw.Decode(micro, phase), opt.Decode(micro, phase)
			for k, v := range a {
				if b[k] != v {
					t.Fatalf("decoders disagree on %s at %#x phase %d", k, micro, phase)
				}
			}
		}
	}
}

func TestDecoderClockChannel(t *testing.T) {
	f := fmt16(t)
	res, err := Build(f, testSpecs(), &Options{
		CtlX: map[string]geom.Coord{
			"r0.ld": geom.L(30), "r0.rd": geom.L(80), "alu.op": geom.L(140),
			"alu.rd": geom.L(200), "dup": geom.L(260),
		},
		ClockX: map[string][]geom.Coord{
			"phi2": {geom.L(320), geom.L(400)},
			"phi1": {geom.L(360)},
		},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	vs := drc.Check(res.Layout.Cell.Layout, layer.MeadConway(), &drc.Options{MaxViolations: 12})
	if len(vs) != 0 {
		t.Fatalf("decoder-with-clocks DRC violations:\n%v", vs)
	}
	got, err := transistor.Extract(res.Layout.Cell.Layout)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if !got.Equal(res.Layout.Cell.Netlist) {
		t.Fatalf("clock channel broke the netlist:\n%s", res.Layout.Cell.Netlist.Diff(got))
	}
	// The clock nets must reach the south edge: look for labels.
	phi2Drops := 0
	for _, lb := range res.Layout.Cell.Layout.FlatLabels() {
		if lb.Text == "phi2" && lb.At.Y <= geom.L(2) {
			phi2Drops++
		}
	}
	if phi2Drops != 2 {
		t.Errorf("phi2 south drops = %d, want 2", phi2Drops)
	}
}
