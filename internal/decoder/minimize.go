package decoder

// Espresso-style two-level minimization of the text array. The seed
// optimizer in array.go only merges cubes at Hamming distance 1 with
// identical output sets; this pass runs the classic EXPAND / IRREDUNDANT
// loop per output group, which raises literals to don't-cares whenever the
// enlarged cube stays inside the function — the move that lets "OP=1 |
// OP=3" collapse to a single row and lets whole input columns fold away
// when no surviving term tests them.
//
// The structure follows Espresso's single-output specialization:
//
//   - each output's cover is minimized independently (the PLA's OR plane
//     makes outputs independent once rows can be shared, and the sharing
//     pass in Optimize runs afterwards);
//   - EXPAND tries to raise every specified literal of every cube, in
//     canonical order; a raise is kept iff the enlarged cube is still
//     contained in the cover, decided by a Shannon-cofactor tautology
//     check;
//   - IRREDUNDANT drops cubes covered by the rest of the cover, again in
//     canonical order.
//
// Everything is deterministic: groups are minimized on a bounded worker
// pool with per-slot result writes, cube order inside a group is canonical
// before and after, and the tautology check's recursion budget is a pure
// function of its input. The compiled decoder is therefore byte-identical
// at every Options.Parallelism — pinned by TestMinimizeDeterministic.

import (
	"context"
	"sort"

	"bristleblocks/internal/pool"
)

// tautNodeBudget bounds one containment check's Shannon recursion. An
// exhausted budget conservatively answers "not contained", so the raise is
// rejected and the cover stays valid; the bound only costs optimality on
// pathological guards, never correctness, and it is deterministic because
// the spend depends only on the cover being checked.
const tautNodeBudget = 1 << 14

// MinimizeAndOptimize is the full Pass 2 optimizer: the Espresso-style
// per-output minimization above, followed by the cross-output sharing and
// distance-1 merging of Optimize. The plain Optimize result is kept as a
// baseline and wins ties, so enabling the minimizer never produces a
// larger array than the seed optimizer — the goldens only move where the
// decoder legitimately shrinks.
func (a *Array) MinimizeAndOptimize(parallelism int) OptStats {
	st := OptStats{
		TermsBefore:    len(a.Terms),
		LiteralsBefore: a.literalCount(),
		InputsBefore:   len(a.UsedInputs()),
	}

	// Baseline: the seed sharing/merge loop alone, on a private copy.
	plain := &Array{Format: a.Format, Controls: a.Controls, Terms: deepCopyTerms(a.Terms)}
	plain.Optimize()

	// Espresso pass per output group, then the same sharing/merge loop to
	// re-share identical rows across outputs.
	a.expandGroups(parallelism)
	a.Optimize()

	if plainScore, minScore := arrayScore(plain), arrayScore(a); !minScore.less(plainScore) {
		a.Terms = plain.Terms
	}
	st.TermsAfter = len(a.Terms)
	st.LiteralsAfter = a.literalCount()
	st.InputsAfter = len(a.UsedInputs())
	return st
}

// score orders candidate arrays by silicon cost: term rows dominate (each
// costs a full PLA row), then used input columns (each costs two literal
// lines across every row), then literals (each costs a transistor).
type score struct{ terms, inputs, literals int }

func arrayScore(a *Array) score {
	return score{terms: len(a.Terms), inputs: len(a.UsedInputs()), literals: a.literalCount()}
}

func (s score) less(o score) bool {
	if s.terms != o.terms {
		return s.terms < o.terms
	}
	if s.inputs != o.inputs {
		return s.inputs < o.inputs
	}
	return s.literals < o.literals
}

func deepCopyTerms(ts []Term) []Term {
	out := make([]Term, len(ts))
	for i, t := range ts {
		out[i] = Term{In: append(Cube(nil), t.In...), Outs: append([]bool(nil), t.Outs...)}
	}
	return out
}

// expandGroups rebuilds the array from the per-output minimized covers.
// Each output group is an independent minimization problem, so the groups
// run on the bounded worker pool with per-slot writes — the reassembled
// term list is identical at every pool width.
func (a *Array) expandGroups(parallelism int) {
	nOut := len(a.Controls)
	groups := make([][]Cube, nOut)
	for _, t := range a.Terms {
		for i, on := range t.Outs {
			if on {
				groups[i] = append(groups[i], append(Cube(nil), t.In...))
			}
		}
	}
	workers := pool.Size(parallelism, nOut)
	// The worker fn never errors, and the background context is fine: a
	// group minimizes in microseconds, far below cancellation granularity.
	_ = pool.RunIndexed(context.Background(), workers, nOut, func(_, i int) error {
		groups[i] = minimizeCover(groups[i])
		return nil
	})
	terms := make([]Term, 0, len(a.Terms))
	for i, cubes := range groups {
		for _, c := range cubes {
			outs := make([]bool, nOut)
			outs[i] = true
			terms = append(terms, Term{In: c, Outs: outs})
		}
	}
	a.Terms = terms
}

// minimizeCover runs EXPAND then IRREDUNDANT over one output's cover and
// returns it in canonical order. The cover's ON-set is exactly the union
// of its cubes (a PLA has no don't-care input words), so every move is
// validated by containment in the current cover and the function never
// changes — pinned exhaustively by TestMinimizedEquivalent.
func minimizeCover(cover []Cube) []Cube {
	if len(cover) <= 1 {
		return cover
	}
	sortCubes(cover)
	cover = removeSingleContained(cover)

	// EXPAND: for each cube in canonical order, try raising each specified
	// literal in position order. The cube under expansion keeps its
	// original value inside the cover while its raises are validated, so
	// each check is against the unchanged function; the expanded cube is
	// written back before the next cube's turn.
	for i := range cover {
		cand := append(Cube(nil), cover[i]...)
		for pos := range cand {
			if cand[pos] == '-' {
				continue
			}
			save := cand[pos]
			cand[pos] = '-'
			if !coverContains(cover, cand) {
				cand[pos] = save
			}
		}
		cover[i] = cand
	}
	cover = removeSingleContained(cover)

	// IRREDUNDANT: drop cubes covered by the rest, greedily in canonical
	// order. Greedy is not minimum-cardinality in general, but it is
	// deterministic and never wrong.
	for i := 0; i < len(cover); i++ {
		rest := make([]Cube, 0, len(cover)-1)
		rest = append(rest, cover[:i]...)
		rest = append(rest, cover[i+1:]...)
		if coverContains(rest, cover[i]) {
			cover = append(cover[:i], cover[i+1:]...)
			i--
		}
	}
	sortCubes(cover)
	return cover
}

func sortCubes(cs []Cube) {
	sort.SliceStable(cs, func(i, j int) bool { return string(cs[i]) < string(cs[j]) })
}

// removeSingleContained drops cubes contained in a single other cube
// (including duplicates, keeping the earlier canonical copy).
func removeSingleContained(cover []Cube) []Cube {
	kept := make([]Cube, 0, len(cover))
	for i, c := range cover {
		contained := false
		for j, q := range cover {
			if i == j {
				continue
			}
			if cubeInCube(c, q) && !(cubeEqual(c, q) && j > i) {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, c)
		}
	}
	return kept
}

// cubeInCube reports c ⊆ q: every word matching c also matches q.
func cubeInCube(c, q Cube) bool {
	for i := range q {
		if q[i] != '-' && q[i] != c[i] {
			return false
		}
	}
	return true
}

func cubeEqual(a, b Cube) bool { return string(a) == string(b) }

// coverContains reports c ⊆ ∪F by checking that the cofactor of F with
// respect to c is a tautology.
func coverContains(f []Cube, c Cube) bool {
	cof := make([]Cube, 0, len(f))
	for _, q := range f {
		r, ok := cofactorCube(q, c)
		if ok {
			cof = append(cof, r)
		}
	}
	budget := tautNodeBudget
	return tautology(cof, &budget)
}

// cofactorCube computes q's cofactor with respect to c: nil/false when the
// cubes are disjoint, otherwise q with c's specified positions raised.
func cofactorCube(q, c Cube) (Cube, bool) {
	var out Cube
	for i := range q {
		if c[i] == '-' {
			continue
		}
		if q[i] != '-' && q[i] != c[i] {
			return nil, false
		}
		if q[i] != '-' {
			if out == nil {
				out = append(Cube(nil), q...)
			}
			out[i] = '-'
		}
	}
	if out == nil {
		return q, true
	}
	return out, true
}

// tautology decides whether ∪F covers every input word, by Shannon
// expansion on the lowest specified column. The budget counts recursion
// nodes; exhaustion answers false (conservative).
func tautology(f []Cube, budget *int) bool {
	*budget--
	if *budget <= 0 {
		return false
	}
	if len(f) == 0 {
		return false
	}
	branch := -1
	for _, q := range f {
		allDC := true
		for i, ch := range q {
			if ch != '-' {
				allDC = false
				if branch == -1 || i < branch {
					branch = i
				}
				break
			}
		}
		if allDC {
			return true // a universal cube covers everything
		}
	}
	// Every cube is specified somewhere; branch on the lowest such column.
	// (branch >= 0 because f is non-empty and no cube was universal.)
	for _, v := range []byte{'0', '1'} {
		cof := make([]Cube, 0, len(f))
		for _, q := range f {
			switch q[branch] {
			case '-':
				cof = append(cof, q)
			case v:
				r := append(Cube(nil), q...)
				r[branch] = '-'
				cof = append(cof, r)
			}
		}
		if !tautology(cof, budget) {
			return false
		}
	}
	return true
}
