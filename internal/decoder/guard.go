package decoder

import (
	"fmt"
	"strconv"
	"strings"
)

// Guard expressions are the decode functions written on control bristles,
// e.g. "OP=3 & EN" or "OP=1 | OP=2" or "!(SRC=0) & OP[2]".
//
// Grammar:
//
//	expr   := term ('|' term)*
//	term   := factor ('&' factor)*
//	factor := '!' factor | '(' expr ')' | atom
//	atom   := FIELD '=' NUM       field equals value
//	        | FIELD '[' NUM ']'   single bit of field
//	        | FIELD               1-bit field shorthand (FIELD[0])
//	        | '1' | '0'           constants
type guardExpr interface {
	eval(f *Format, micro uint64) (bool, error)
	String() string
}

type gConst struct{ v bool }
type gNot struct{ x guardExpr }
type gAnd struct{ xs []guardExpr }
type gOr struct{ xs []guardExpr }
type gEq struct {
	field string
	val   uint64
}
type gBit struct {
	field string
	bit   int
}

func (g gConst) String() string {
	if g.v {
		return "1"
	}
	return "0"
}
func (g gNot) String() string { return "!" + g.x.String() }
func (g gAnd) String() string { return "(" + joinExprs(g.xs, " & ") + ")" }
func (g gOr) String() string  { return "(" + joinExprs(g.xs, " | ") + ")" }
func (g gEq) String() string  { return fmt.Sprintf("%s=%d", g.field, g.val) }
func (g gBit) String() string { return fmt.Sprintf("%s[%d]", g.field, g.bit) }

func joinExprs(xs []guardExpr, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = x.String()
	}
	return strings.Join(parts, sep)
}

func (g gConst) eval(*Format, uint64) (bool, error) { return g.v, nil }
func (g gNot) eval(f *Format, m uint64) (bool, error) {
	v, err := g.x.eval(f, m)
	return !v, err
}
func (g gAnd) eval(f *Format, m uint64) (bool, error) {
	for _, x := range g.xs {
		v, err := x.eval(f, m)
		if err != nil || !v {
			return false, err
		}
	}
	return true, nil
}
func (g gOr) eval(f *Format, m uint64) (bool, error) {
	for _, x := range g.xs {
		v, err := x.eval(f, m)
		if err != nil || v {
			return v, err
		}
	}
	return false, nil
}
func (g gEq) eval(f *Format, m uint64) (bool, error) {
	fd, ok := f.FieldByName(g.field)
	if !ok {
		return false, fmt.Errorf("unknown field %q", g.field)
	}
	if g.val >= 1<<uint(fd.Width) {
		return false, fmt.Errorf("value %d does not fit field %q (%d bits)", g.val, g.field, fd.Width)
	}
	return f.Extract(fd, m) == g.val, nil
}
func (g gBit) eval(f *Format, m uint64) (bool, error) {
	fd, ok := f.FieldByName(g.field)
	if !ok {
		return false, fmt.Errorf("unknown field %q", g.field)
	}
	if g.bit < 0 || g.bit >= fd.Width {
		return false, fmt.Errorf("bit %d outside field %q (%d bits)", g.bit, g.field, fd.Width)
	}
	return m>>uint(fd.Lo+g.bit)&1 == 1, nil
}

type guardParser struct {
	toks []string
	pos  int
}

// ParseGuard parses a guard expression (the fields are resolved lazily at
// evaluation/SOP time against a Format).
func ParseGuard(src string) (guardExpr, error) {
	toks, err := tokenizeGuard(src)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty guard")
	}
	p := &guardParser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("trailing input %q in guard", p.toks[p.pos])
	}
	return e, nil
}

func tokenizeGuard(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case strings.ContainsRune("!&|()[]=", rune(c)):
			toks = append(toks, string(c))
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case isIdentChar(c):
			j := i
			for j < len(src) && (isIdentChar(src[j]) || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			return nil, fmt.Errorf("bad character %q in guard", c)
		}
	}
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '.'
}

func (p *guardParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *guardParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *guardParser) parseExpr() (guardExpr, error) {
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	xs := []guardExpr{t}
	for p.peek() == "|" {
		p.next()
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		xs = append(xs, t)
	}
	if len(xs) == 1 {
		return xs[0], nil
	}
	return gOr{xs}, nil
}

func (p *guardParser) parseTerm() (guardExpr, error) {
	f, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	xs := []guardExpr{f}
	for p.peek() == "&" {
		p.next()
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		xs = append(xs, f)
	}
	if len(xs) == 1 {
		return xs[0], nil
	}
	return gAnd{xs}, nil
}

func (p *guardParser) parseFactor() (guardExpr, error) {
	switch t := p.peek(); {
	case t == "!":
		p.next()
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return gNot{x}, nil
	case t == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("missing ) in guard")
		}
		return e, nil
	case t == "1":
		p.next()
		return gConst{true}, nil
	case t == "0":
		p.next()
		return gConst{false}, nil
	case t == "":
		return nil, fmt.Errorf("unexpected end of guard")
	case isIdentChar(t[0]):
		return p.parseAtom()
	default:
		return nil, fmt.Errorf("unexpected token %q in guard", t)
	}
}

func (p *guardParser) parseAtom() (guardExpr, error) {
	name := p.next()
	switch p.peek() {
	case "=":
		p.next()
		v, err := strconv.ParseUint(p.next(), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %s=: %w", name, err)
		}
		return gEq{name, v}, nil
	case "[":
		p.next()
		b, err := strconv.Atoi(p.next())
		if err != nil {
			return nil, fmt.Errorf("bad bit index for %s: %w", name, err)
		}
		if p.next() != "]" {
			return nil, fmt.Errorf("missing ] after %s[%d", name, b)
		}
		return gBit{name, b}, nil
	default:
		// Bare field: shorthand for bit 0 of a 1-bit field.
		return gBit{name, 0}, nil
	}
}

// Cube is one product term over the microcode bits: each position is '0'
// (complemented literal), '1' (true literal), or '-' (absent).
type Cube []byte

// String renders the cube as its 0/1/x character string.
func (c Cube) String() string { return string(c) }

// matches reports whether the microcode word satisfies the cube.
func (c Cube) matches(micro uint64) bool {
	for i, ch := range c {
		bit := micro>>uint(i)&1 == 1
		if ch == '1' && !bit || ch == '0' && bit {
			return false
		}
	}
	return true
}

// maxCubes bounds SOP expansion blow-up per guard.
const maxCubes = 4096

// SOP converts a guard to sum-of-products form over the microcode bits.
func guardSOP(g guardExpr, f *Format) ([]Cube, error) {
	// Verify field references first (eval against word 0 walks the tree).
	if _, err := g.eval(f, 0); err != nil {
		return nil, err
	}
	return sop(g, f, false)
}

func freshCube(width int) Cube {
	c := make(Cube, width)
	for i := range c {
		c[i] = '-'
	}
	return c
}

// sop computes the SOP of g (or of !g when negate is set).
func sop(g guardExpr, f *Format, negate bool) ([]Cube, error) {
	switch e := g.(type) {
	case gConst:
		v := e.v != negate
		if v {
			return []Cube{freshCube(f.Width)}, nil
		}
		return nil, nil
	case gNot:
		return sop(e.x, f, !negate)
	case gAnd:
		if negate { // De Morgan: !(a&b) = !a | !b
			return sopOr(e.xs, f, true)
		}
		return sopAnd(e.xs, f, false)
	case gOr:
		if negate {
			return sopAnd(e.xs, f, true)
		}
		return sopOr(e.xs, f, false)
	case gBit:
		fd, _ := f.FieldByName(e.field)
		c := freshCube(f.Width)
		if negate {
			c[fd.Lo+e.bit] = '0'
		} else {
			c[fd.Lo+e.bit] = '1'
		}
		return []Cube{c}, nil
	case gEq:
		fd, _ := f.FieldByName(e.field)
		if !negate {
			c := freshCube(f.Width)
			for b := 0; b < fd.Width; b++ {
				if e.val>>uint(b)&1 == 1 {
					c[fd.Lo+b] = '1'
				} else {
					c[fd.Lo+b] = '0'
				}
			}
			return []Cube{c}, nil
		}
		// !(F=v): at least one bit differs.
		var out []Cube
		for b := 0; b < fd.Width; b++ {
			c := freshCube(f.Width)
			if e.val>>uint(b)&1 == 1 {
				c[fd.Lo+b] = '0'
			} else {
				c[fd.Lo+b] = '1'
			}
			out = append(out, c)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown guard node %T", g)
	}
}

func sopOr(xs []guardExpr, f *Format, negateEach bool) ([]Cube, error) {
	var out []Cube
	for _, x := range xs {
		cs, err := sop(x, f, negateEach)
		if err != nil {
			return nil, err
		}
		out = append(out, cs...)
		if len(out) > maxCubes {
			return nil, fmt.Errorf("guard expands to more than %d product terms", maxCubes)
		}
	}
	return out, nil
}

func sopAnd(xs []guardExpr, f *Format, negateEach bool) ([]Cube, error) {
	acc := []Cube{freshCube(f.Width)}
	for _, x := range xs {
		cs, err := sop(x, f, negateEach)
		if err != nil {
			return nil, err
		}
		var next []Cube
		for _, a := range acc {
			for _, b := range cs {
				if m, ok := mergeCubes(a, b); ok {
					next = append(next, m)
				}
			}
			if len(next) > maxCubes {
				return nil, fmt.Errorf("guard expands to more than %d product terms", maxCubes)
			}
		}
		acc = next
	}
	return acc, nil
}

// mergeCubes intersects two cubes; ok is false when they conflict.
func mergeCubes(a, b Cube) (Cube, bool) {
	out := make(Cube, len(a))
	for i := range a {
		switch {
		case a[i] == '-':
			out[i] = b[i]
		case b[i] == '-' || a[i] == b[i]:
			out[i] = a[i]
		default:
			return nil, false
		}
	}
	return out, true
}
