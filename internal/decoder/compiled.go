package decoder

// The compiled decode backend: the optimized text array lowered to word
// masks. The interpreted Array.Eval walks every term's cube byte by byte
// for every control on every phase of every simulated cycle; a compiled
// term is one (care, value) mask pair and matches with a single AND and
// compare. sim.Compile plugs this into the closure-chain simulator via
// the sim.CompiledDecoder interface.

import "bristleblocks/internal/sim"

// maskTerm is one product term as word masks: a microcode word matches
// when micro&care == val ('1' literals set both bits, '0' literals set
// only care, don't-cares set neither).
type maskTerm struct {
	care, val uint64
}

// Compiled is the decoder's PLA compiled for evaluation: per control, the
// mask-form terms that feed it. It is immutable after Compile and safe for
// concurrent use.
type Compiled struct {
	ctls  []ControlSpec
	names []string
	terms [][]maskTerm // indexed like ctls
}

// Compile lowers the array to mask form. The per-control term order
// follows the canonical term order of the array, so evaluation is
// deterministic (not that order could change the OR of matches).
func (a *Array) Compile() *Compiled {
	c := &Compiled{
		ctls:  append([]ControlSpec(nil), a.Controls...),
		terms: make([][]maskTerm, len(a.Controls)),
	}
	c.names = make([]string, len(c.ctls))
	for i, sp := range c.ctls {
		c.names[i] = sp.Name
	}
	for _, t := range a.Terms {
		var m maskTerm
		for pos, ch := range t.In {
			if pos >= 64 {
				break // Format.Validate bounds the width at 64
			}
			switch ch {
			case '1':
				m.care |= 1 << uint(pos)
				m.val |= 1 << uint(pos)
			case '0':
				m.care |= 1 << uint(pos)
			}
		}
		for i, on := range t.Outs {
			if on {
				c.terms[i] = append(c.terms[i], m)
			}
		}
	}
	return c
}

// ControlNames lists the control lines in evaluation order — the index
// contract for DecodeInto's out slice.
func (c *Compiled) ControlNames() []string { return c.names }

// ControlSpecs returns the compiled control specs in evaluation order.
func (c *Compiled) ControlSpecs() []ControlSpec { return c.ctls }

// Eval computes control i for a microcode word, ignoring phase.
func (c *Compiled) Eval(i int, micro uint64) bool {
	for _, m := range c.terms[i] {
		if micro&m.care == m.val {
			return true
		}
	}
	return false
}

// DecodeInto fills out (indexed per ControlNames) with the control values
// for one phase, without allocating. A control is active only in its
// declared phase, matching the interpreted Result.Decode exactly.
func (c *Compiled) DecodeInto(micro uint64, phase int, out []bool) {
	for i, sp := range c.ctls {
		out[i] = sp.Phase == phase && c.Eval(i, micro)
	}
}

// Decoder adapts the compiled form to the map-based sim.Decoder contract.
// The map allocation per call remains (the contract hands the map to the
// caller), but term matching runs on masks instead of cube bytes.
func (c *Compiled) Decoder() sim.Decoder {
	return func(micro uint64, phase int) map[string]bool {
		out := make(map[string]bool, len(c.ctls))
		for i, sp := range c.ctls {
			out[sp.Name] = sp.Phase == phase && c.Eval(i, micro)
		}
		return out
	}
}
