package decoder

import (
	"fmt"

	"bristleblocks/internal/geom"
	"bristleblocks/internal/sim"
)

// Result is the complete output of Pass 2: the decoder layout, the
// optimized text array, the simulation decoder, statistics, and the
// Logic-level diagram of the decode functions.
type Result struct {
	Layout *Layout
	Array  *Array
	Stats  OptStats
	// Decode drives simulation: control values per microcode word and
	// phase (a control is active only in its declared phase).
	Decode sim.Decoder
	// Compiled is the mask-form decode backend Decode runs on; sim.Compile
	// takes it directly for allocation-free stepping.
	Compiled *Compiled
}

// Options tunes Pass 2.
type Options struct {
	// SkipOptimize leaves the text array unoptimized (the A3 ablation).
	SkipOptimize bool
	// SkipMinimize keeps the seed sharing/merge optimizer but disables the
	// Espresso-style expansion pass (minimize.go). Ignored when
	// SkipOptimize is set.
	SkipMinimize bool
	// Parallelism bounds the minimizer's per-output-group worker pool:
	// 0 selects GOMAXPROCS, 1 runs serially. The built decoder is
	// byte-identical at every setting.
	Parallelism int
	// CtlX gives the core's desired control-line x offsets on the
	// decoder's south edge; missing controls drop straight down.
	CtlX map[string]geom.Coord
	// ClockX lists x offsets on the south edge where the clocks must be
	// dropped (keys "phi1", "phi2") for the core's precharge cells.
	ClockX map[string][]geom.Coord
}

// Build runs Pass 2: parse guards, build and optimize the text array, run
// the two-tape Turing machine to produce silicon code, and lay out the
// PLA, driver row, control buffers, and control channel.
func Build(f *Format, specs []ControlSpec, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	a, err := BuildArray(f, specs)
	if err != nil {
		return nil, err
	}
	var stats OptStats
	switch {
	case opts.SkipOptimize:
		stats = OptStats{
			TermsBefore: len(a.Terms), TermsAfter: len(a.Terms),
			LiteralsBefore: a.literalCount(), LiteralsAfter: a.literalCount(),
			InputsBefore: len(a.UsedInputs()), InputsAfter: len(a.UsedInputs()),
		}
		a.sortTerms()
	case opts.SkipMinimize:
		stats = a.Optimize()
	default:
		stats = a.MinimizeAndOptimize(opts.Parallelism)
	}

	ops, err := CompileSilicon(a)
	if err != nil {
		return nil, err
	}
	lay, err := buildLayout(a, ops, len(ops), opts.CtlX, opts.ClockX)
	if err != nil {
		return nil, err
	}
	if err := checkChannelCollisions(a, lay, opts.CtlX); err != nil {
		return nil, err
	}

	res := &Result{Layout: lay, Array: a, Stats: stats, Compiled: a.Compile()}
	res.Decode = res.Compiled.Decoder()
	return res, nil
}

// checkChannelCollisions rejects control targets whose channel drops would
// overlap another control's drop (closer than poly spacing at the same x
// span). The core pass spaces elements widely enough in practice; this is
// a clear error instead of a silent short.
func checkChannelCollisions(a *Array, lay *Layout, ctlX map[string]geom.Coord) error {
	type drop struct {
		name string
		x    geom.Coord
	}
	var drops []drop
	for _, sp := range a.Controls {
		if x, ok := ctlX[sp.Name]; ok {
			drops = append(drops, drop{sp.Name, x})
		}
	}
	for i := 0; i < len(drops); i++ {
		for j := i + 1; j < len(drops); j++ {
			d := drops[i].x - drops[j].x
			if d < 0 {
				d = -d
			}
			if d < geom.L(5) {
				return fmt.Errorf("decoder: control lines %q and %q are only %d quanta apart at the core edge (need 5λ)",
					drops[i].name, drops[j].name, d)
			}
		}
	}
	return nil
}
