package decoder

import (
	"fmt"
	"sort"

	"bristleblocks/internal/cell"
	"bristleblocks/internal/celllib"
	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/mask"
	"bristleblocks/internal/sticks"
	"bristleblocks/internal/tm"
	"bristleblocks/internal/transistor"
)

// PLA geometry constants, in lambda. The decoder is an nMOS NOR-NOR PLA:
// vertical poly literal lines (true + complement per used microcode bit)
// cross horizontal precharge-free term rows in the AND plane; term lines
// convert to poly at the plane boundary and gate pulldowns on vertical
// metal output columns in the OR plane. Shared-gate depletion pullups sit
// at the left (terms) and top (outputs).
const (
	plaRowPitch = 18 // vertical pitch of term rows
	andColPitch = 14 // horizontal pitch per literal line
	orColPitch  = 24 // horizontal pitch per output column (fits a control buffer below)

	// Left-edge structure: VDD rail, pullup strips, shared gate, gnd strap.
	vddRailW   = 4
	pullupLen  = 19
	gndStrapX  = 22 // vertical diffusion ground strap (4λ wide)
	andFirstCX = 36 // center of the first literal line

	chanTrackPitch = 8 // control-channel metal track pitch
)

func l(n int) geom.Coord { return geom.L(n) }

// plaGeom captures the computed positions of a decoder layout.
type plaGeom struct {
	nIn, nTerm, nOut int

	chanH   geom.Coord // control channel height (bottom of cell to buffer row)
	bufY    geom.Coord // buffer row bottom
	planesY geom.Coord // OR/AND plane bottom (first row's base)
	topY    geom.Coord // top of the term rows
	driverY geom.Coord // driver row bottom
	height  geom.Coord

	andRight geom.Coord // right edge of the AND plane columns
	orLeft   geom.Coord // x of the boundary tile
	width    geom.Coord

	colX func(i int) geom.Coord // literal column centers (0..2*nIn-1)
	rowY func(r int) geom.Coord // term row centers
	outX func(k int) geom.Coord // output column centers
}

func computeGeom(nIn, nTerm, nOut, nChanTracks int) *plaGeom {
	g := &plaGeom{nIn: nIn, nTerm: nTerm, nOut: nOut}
	g.chanH = geom.Coord(nChanTracks)*l(chanTrackPitch) + l(8)
	g.bufY = g.chanH
	g.planesY = g.bufY + l(celllib.CtlBufHeight) + l(6)
	g.topY = g.planesY + geom.Coord(nTerm)*l(plaRowPitch) + l(8)
	g.driverY = g.topY + l(10)
	g.height = g.driverY + l(36)

	g.andRight = l(andFirstCX) + geom.Coord(2*nIn-1)*l(andColPitch) + l(7)
	g.orLeft = g.andRight + l(4)
	orStart := g.orLeft + l(12)
	g.width = orStart + geom.Coord(nOut)*l(orColPitch) + l(14)

	g.colX = func(i int) geom.Coord { return l(andFirstCX) + geom.Coord(i)*l(andColPitch) }
	g.rowY = func(r int) geom.Coord { return g.planesY + geom.Coord(r)*l(plaRowPitch) + l(11) }
	g.outX = func(k int) geom.Coord { return orStart + geom.Coord(k)*l(orColPitch) + l(10) }
	return g
}

// Layout is the generated decoder: the cell (layout + bristles), the
// positions of its south-edge control lines, and bookkeeping for tests.
type Layout struct {
	Cell *cell.Cell
	// CtlX maps each control name to the x offset of its poly line on the
	// decoder's south edge.
	CtlX map[string]geom.Coord
	// MicroX maps microcode bit index to the x offset of its input line on
	// the north edge.
	MicroX map[int]geom.Coord
	// TMSteps is how many steps the two-tape Turing machine ran.
	TMSteps int
}

// buildLayout turns the silicon-code op stream into mask geometry. ctlX
// gives the core's desired control-line x offsets; the control channel at
// the bottom of the decoder routes each buffer output to its core position.
func buildLayout(a *Array, ops []tm.Symbol, steps int, ctlX map[string]geom.Coord, clockX map[string][]geom.Coord) (*Layout, error) {
	grid, err := parseOps(ops)
	if err != nil {
		return nil, err
	}
	inputs := a.UsedInputs()
	nIn, nOut := len(inputs), len(a.Controls)
	nTerm := len(grid.rows)
	if nTerm > 0 && (grid.andWidth != nIn || grid.orWidth != nOut) {
		return nil, fmt.Errorf("decoder: op grid %dx%d does not match array %dx%d",
			grid.andWidth, grid.orWidth, nIn, nOut)
	}

	// Channel tracks: one per control plus two clock tracks.
	g := computeGeom(nIn, nTerm, nOut, nOut+2)
	c := cell.New("decoder", geom.R(0, 0, g.width, g.height))
	c.Sticks = &sticks.Diagram{}
	c.Netlist = &transistor.Netlist{}
	lay := c.Layout

	termNet := func(r int) string { return fmt.Sprintf("t%d", r) }
	litNet := func(i int) string { // column index -> net name
		bit := inputs[i/2]
		if i%2 == 0 {
			return fmt.Sprintf("u%d", bit)
		}
		return fmt.Sprintf("nu%d", bit)
	}
	outNet := func(k int) string { return "plaout." + a.Controls[k].Name }

	// ---- Term rows: term metal line, pullup strip, AND gnd rail (metal),
	// OR gnd rail (diff), boundary tile, OR-plane term poly.
	for r := 0; r < nTerm; r++ {
		cy := g.rowY(r)
		// Pullup strip from the VDD rail to the term line.
		lay.AddBox(layer.Diff, geom.R(0, cy-l(2), l(pullupLen), cy+l(2)))
		lay.AddBox(layer.Contact, geom.R(l(1), cy-l(1), l(3), cy+l(1)))
		lay.AddBox(layer.Contact, geom.R(l(16), cy-l(1), l(18), cy+l(1)))
		c.Netlist.AddDep("vdd", termNet(r), "vdd", l(2), l(2))
		// Term metal from the pullup to the boundary tile.
		lay.AddBox(layer.Metal, geom.R(l(15), cy-l(2), g.orLeft+l(4), cy+l(2)))
		lay.AddLabel(termNet(r), geom.Pt(l(30), cy), layer.Metal)
		c.Sticks.AddSeg(layer.Metal, geom.Pt(l(15), cy), geom.Pt(g.orLeft, cy))
		// AND-plane ground rail (metal) with a contact to the gnd strap.
		lay.AddBox(layer.Metal, geom.R(l(gndStrapX-2), cy-l(9), g.andRight, cy-l(5)))
		lay.AddBox(layer.Contact, geom.R(l(gndStrapX+1), cy-l(8), l(gndStrapX+3), cy-l(6)))
		// Boundary tile: term metal -> term poly.
		bx := g.orLeft
		lay.AddBox(layer.Poly, geom.R(bx, cy-l(2), bx+l(4), cy+l(2)))
		lay.AddBox(layer.Contact, geom.R(bx+l(1), cy-l(1), bx+l(3), cy+l(1)))
		// OR-plane term poly line.
		lay.AddBox(layer.Poly, geom.R(bx+l(2), cy-l(1), g.outX(nOut-1)+l(4), cy+l(1)))
		// OR-plane ground rail in diffusion, joined to the right strap.
		lay.AddBox(layer.Diff, geom.R(bx+l(8), cy-l(8), g.width-l(2), cy-l(6)))
	}
	if nTerm > 0 {
		// Right-edge vertical ground strap (diffusion) collecting the OR
		// rails, with a metal head at the top for the assembly strap.
		lay.AddBox(layer.Diff, geom.R(g.width-l(6), g.planesY, g.width-l(2), g.topY-l(4)))
		lay.AddBox(layer.Diff, geom.R(g.width-l(7), g.topY-l(4), g.width-l(1), g.topY))
		lay.AddBox(layer.Contact, geom.R(g.width-l(5), g.topY-l(3), g.width-l(3), g.topY-l(1)))
		lay.AddBox(layer.Metal, geom.R(g.width-l(7), g.topY-l(4), g.width, g.topY))
		lay.AddLabel("gnd", geom.Pt(g.width-l(4), g.planesY+l(1)), layer.Diff)

	}

	// ---- Left VDD structure: vertical metal rail, shared depletion gate
	// line with implant, tie contact above the top row.
	if nTerm > 0 {
		railTop := g.rowY(nTerm-1) + l(10)
		lay.AddBox(layer.Metal, geom.R(0, g.planesY, l(vddRailW), railTop))
		lay.AddLabel("vdd", geom.Pt(l(1), g.planesY+l(1)), layer.Metal)

		lay.AddBox(layer.Poly, geom.R(l(9), g.rowY(0)-l(4), l(11), railTop))
		lay.AddBox(layer.Implant, geom.R(l(7), g.rowY(0)-l(4), l(13), g.rowY(nTerm-1)+l(4)))
		// Tie the shared gate to VDD.
		tieY := railTop - l(5)
		lay.AddBox(layer.Poly, geom.R(0, tieY, l(11), tieY+l(4)))
		lay.AddBox(layer.Contact, geom.R(l(1), tieY+l(1), l(3), tieY+l(3)))
		// Vertical diffusion ground strap through the AND plane, with a
		// metal head at the bottom reaching the west edge for power
		// wiring.
		lay.AddBox(layer.Diff, geom.R(l(gndStrapX), g.planesY, l(gndStrapX+4), g.topY))
		lay.AddBox(layer.Diff, geom.R(l(gndStrapX-1), g.planesY, l(gndStrapX+3), g.planesY+l(4)))
		lay.AddBox(layer.Contact, geom.R(l(gndStrapX), g.planesY+l(1), l(gndStrapX+2), g.planesY+l(3)))
		// Metal drop from the strap head to the buffer-row ground rail
		// (below every term line, so no metal crossings).
		lay.AddBox(layer.Metal, geom.R(l(gndStrapX-1), g.bufY, l(gndStrapX+5), g.planesY+l(4)))
		lay.AddLabel("gnd", geom.Pt(l(gndStrapX+1), g.planesY+l(1)), layer.Diff)
	}

	// ---- Literal lines and AND-plane crosspoints.
	if nTerm > 0 {
		for i := 0; i < 2*nIn; i++ {
			cx := g.colX(i)
			lay.AddBox(layer.Poly, geom.R(cx-l(1), g.planesY, cx+l(1), g.driverY+l(2)))
			lay.AddLabel(litNet(i), geom.Pt(cx, g.planesY+l(1)), layer.Poly)
			c.Sticks.AddSeg(layer.Poly, geom.Pt(cx, g.planesY), geom.Pt(cx, g.driverY))
		}
	}
	for r, row := range grid.rows {
		cy := g.rowY(r)
		for i := 0; i < nIn; i++ {
			var col int
			switch row[i] {
			case OpAnd1:
				col = 2*i + 1 // literal true: pulldown gated by the complement
			case OpAnd0:
				col = 2 * i // literal false: pulldown gated by the true line
			default:
				continue
			}
			cx := g.colX(col)
			drawAndTx(lay, cx, cy)
			c.Netlist.AddEnh(litNet(col), termNet(r), "gnd", l(2), l(2))
			c.Sticks.AddDot("enh", geom.Pt(cx-l(5), cy-l(3)))
		}
		for k := 0; k < nOut; k++ {
			if row[nIn+k] != OpOr1 {
				continue
			}
			ox := g.outX(k)
			drawOrTx(lay, ox, cy)
			c.Netlist.AddEnh(termNet(r), outNet(k), "gnd", l(2), l(2))
			c.Sticks.AddDot("enh", geom.Pt(ox, cy))
		}
	}

	// ---- Output columns, their pullups, and the top VDD rail.
	topRail := g.topY + l(4)
	lay.AddBox(layer.Metal, geom.R(g.orLeft+l(8), topRail, g.width, topRail+l(4)))
	lay.AddLabel("vdd", geom.Pt(g.width-l(2), topRail+l(2)), layer.Metal)
	c.AddBristle(cell.Bristle{Name: "or.vdd", Side: cell.East, Offset: topRail + l(2), Layer: layer.Metal, Width: l(4), Flavor: cell.Power, Net: "vdd"})
	// Corner drop joining the top rail to the driver row's vdd rail above.
	lay.AddBox(layer.Metal, geom.R(g.width-l(4), topRail, g.width, g.driverY+l(32)))
	lay.AddBox(layer.Metal, geom.R(l(4), g.driverY+l(28), g.width, g.driverY+l(32)))
	// Shared depletion gate for output pullups, tied to the top rail.
	gateY := g.topY
	if nOut > 0 {
		lay.AddBox(layer.Poly, geom.R(g.outX(0)-l(6), gateY, g.outX(nOut-1)+l(6), gateY+l(2)))
		lay.AddBox(layer.Implant, geom.R(g.outX(0)-l(6), gateY-l(2), g.outX(nOut-1)+l(6), gateY+l(4)))
		tieX := g.outX(nOut-1) + l(6)
		lay.AddBox(layer.Poly, geom.R(tieX-l(4), gateY, tieX, topRail+l(4)))
		lay.AddBox(layer.Contact, geom.R(tieX-l(3), topRail+l(1), tieX-l(1), topRail+l(3)))
	}
	for k := 0; k < nOut; k++ {
		ox := g.outX(k)
		// Column metal from the buffer row to just under the pullup head.
		lay.AddBox(layer.Metal, geom.R(ox-l(2), g.bufY+l(celllib.CtlBufHeight), ox+l(2), g.topY-l(2)))
		lay.AddLabel(outNet(k), geom.Pt(ox, g.planesY-l(1)), layer.Metal)
		c.Sticks.AddSeg(layer.Metal, geom.Pt(ox, g.bufY+l(celllib.CtlBufHeight)), geom.Pt(ox, g.topY-l(2)))
		// Pullup: diffusion from a contact on the column top, through the
		// shared depletion gate, to a contact on the top rail.
		lay.AddBox(layer.Diff, geom.R(ox-l(2), g.topY-l(6), ox+l(2), g.topY-l(2)))
		lay.AddBox(layer.Contact, geom.R(ox-l(1), g.topY-l(5), ox+l(1), g.topY-l(3)))
		lay.AddBox(layer.Diff, geom.R(ox-l(1), g.topY-l(2), ox+l(1), topRail))
		lay.AddBox(layer.Diff, geom.R(ox-l(2), topRail, ox+l(2), topRail+l(4)))
		lay.AddBox(layer.Contact, geom.R(ox-l(1), topRail+l(1), ox+l(1), topRail+l(3)))
		c.Netlist.AddDep("vdd", outNet(k), "vdd", l(2), l(2))
	}

	// The implementation continues in buildLayoutLower (buffer row, driver
	// row, channel): split for readability.
	lo, err := buildLayoutLower(a, c, g, inputs, ctlX, clockX)
	if err != nil {
		return nil, err
	}
	lo.TMSteps = steps
	return lo, nil
}

// drawAndTx draws one AND-plane crosspoint pulldown at literal column cx,
// term row cy: a vertical diffusion stub from the ground rail to a contact
// on the term line, gated by a poly finger from the literal line.
func drawAndTx(lay *mask.Cell, cx, cy geom.Coord) {
	lay.AddBox(layer.Diff, geom.R(cx-l(7), cy-l(2), cx-l(3), cy+l(2))) // top head
	lay.AddBox(layer.Contact, geom.R(cx-l(6), cy-l(1), cx-l(4), cy+l(1)))
	lay.AddBox(layer.Diff, geom.R(cx-l(6), cy-l(5), cx-l(4), cy-l(2))) // channel stub
	lay.AddBox(layer.Diff, geom.R(cx-l(7), cy-l(9), cx-l(3), cy-l(5))) // bottom head
	lay.AddBox(layer.Contact, geom.R(cx-l(6), cy-l(8), cx-l(4), cy-l(6)))
	lay.AddBox(layer.Poly, geom.R(cx-l(8), cy-l(4), cx+l(1), cy-l(2))) // gate finger
}

// drawOrTx draws one OR-plane crosspoint pulldown at output column ox,
// term row cy: a vertical diffusion stub from the (diffusion) ground rail
// to a contact on the output column, gated by the term poly line.
func drawOrTx(lay *mask.Cell, ox, cy geom.Coord) {
	lay.AddBox(layer.Diff, geom.R(ox-l(1), cy-l(6), ox+l(1), cy+l(2))) // stub into the gnd rail
	lay.AddBox(layer.Diff, geom.R(ox-l(2), cy+l(2), ox+l(2), cy+l(6))) // head
	lay.AddBox(layer.Contact, geom.R(ox-l(1), cy+l(3), ox+l(1), cy+l(5)))
}

// buildLayoutLower adds the input driver row, the control buffer row, and
// the control channel, then finalizes bristles.
func buildLayoutLower(a *Array, c *cell.Cell, g *plaGeom, inputs []int, ctlX map[string]geom.Coord, clockX map[string][]geom.Coord) (*Layout, error) {
	lay := c.Layout
	out := &Layout{Cell: c, CtlX: make(map[string]geom.Coord), MicroX: make(map[int]geom.Coord)}

	// ---- Driver row: per input bit, the true line runs straight up to
	// the north edge; an inverter derives the complement line.
	base := g.driverY
	if len(inputs) > 0 {
		rowRight := g.colX(2*len(inputs)-1) + l(7)
		// The gnd rail starts east of the PLA VDD column so the vdd rail
		// can extend to x=0 and join that column below.
		lay.AddBox(layer.Metal, geom.R(l(8), base, rowRight, base+l(4)))     // gnd rail
		lay.AddBox(layer.Metal, geom.R(0, base+l(28), rowRight, base+l(32))) // vdd rail
		lay.AddLabel("gnd", geom.Pt(l(9), base+l(2)), layer.Metal)
		lay.AddLabel("vdd", geom.Pt(l(1), base+l(30)), layer.Metal)
		// Internal hookups: the AND-plane ground strap rises to a contact
		// on the driver gnd rail; the PLA VDD column rises to the driver
		// vdd rail.
		lay.AddBox(layer.Diff, geom.R(l(gndStrapX), g.topY, l(gndStrapX+4), base+l(4)))
		lay.AddBox(layer.Diff, geom.R(l(gndStrapX-1), base, l(gndStrapX+5), base+l(4)))
		lay.AddBox(layer.Contact, geom.R(l(gndStrapX+1), base+l(1), l(gndStrapX+3), base+l(3)))
		lay.AddBox(layer.Metal, geom.R(0, g.planesY, l(vddRailW), base+l(32)))
	}
	for i, bit := range inputs {
		ct := g.colX(2 * i)   // true column
		cc := g.colX(2*i + 1) // complement column
		// True line continues to the north edge.
		lay.AddBox(layer.Poly, geom.R(ct-l(1), base, ct+l(1), g.height))
		net := fmt.Sprintf("u%d", bit)
		lay.AddLabel(net, geom.Pt(ct, g.height-l(1)), layer.Poly)
		out.MicroX[bit] = ct
		c.AddBristle(cell.Bristle{
			Name: fmt.Sprintf("micro%d", bit), Side: cell.North, Offset: ct,
			Layer: layer.Poly, Width: l(2), Flavor: cell.PadReq,
			Net: net, PadClass: "input",
		})

		// Inverter between the columns: input from the true line, output
		// to the complement line.
		inv := celllib.Inverter(fmt.Sprintf("drv%d", bit))
		stampLeaf(c, inv, geom.Translate(ct+l(9), base+l(2)), map[string]string{
			"in": net, "out": fmt.Sprintf("nu%d", bit), "gnd": "gnd", "vdd": "vdd",
		})
		// The inverter's input poly spans [ct+3, ct+13] at base+8..10; a
		// short branch reaches the true line.
		lay.AddBox(layer.Poly, geom.R(ct-l(1), base+l(8), ct+l(3), base+l(10)))
		// Complement: poly pad + contact on the inverter output metal,
		// descent east of the stamp, jog back to the column.
		lay.AddBox(layer.Poly, geom.R(cc-l(2), base+l(14), cc+l(2), base+l(18)))
		lay.AddBox(layer.Contact, geom.R(cc-l(1), base+l(15), cc+l(1), base+l(17)))
		lay.AddWire(layer.Poly, l(2),
			geom.Pt(cc+l(4), base+l(15)),
			geom.Pt(cc+l(4), base-l(6)),
			geom.Pt(cc, base-l(6)),
			geom.Pt(cc, base+l(1)))
		// Connect pad to the descent.
		lay.AddWire(layer.Poly, l(2), geom.Pt(cc+l(1), base+l(15)), geom.Pt(cc+l(4), base+l(15)))
	}

	// ---- Buffer row: one control buffer per output column.
	for k, sp := range a.Controls {
		buf, err := celllib.CtlBuf(sp.Name, sp.Phase)
		if err != nil {
			return nil, err
		}
		bx := g.outX(k) - l(celllib.CtlBufInX)
		stampLeaf(c, buf, geom.Translate(bx, g.bufY), map[string]string{
			"plaout": "plaout." + sp.Name,
			"n":      sp.Name + ".n",
			"gnd":    "gnd", "vdd": "vdd", "phi1": "phi1", "phi2": "phi2",
			sp.Name: sp.Name,
		})
		// Rail and clock-track fillers in the gap to the next buffer.
		gapLo := bx + l(celllib.CtlBufWidth)
		gapHi := bx + l(orColPitch)
		if k == len(a.Controls)-1 {
			gapHi = gapLo
		}
		if gapHi > gapLo {
			lay.AddBox(layer.Metal, geom.R(gapLo, g.bufY, gapHi, g.bufY+l(4)))
			lay.AddBox(layer.Metal, geom.R(gapLo, g.bufY+l(28), gapHi, g.bufY+l(32)))
			lay.AddBox(layer.Poly, geom.R(gapLo, g.bufY+l(celllib.Phi1TrackLo), gapHi, g.bufY+l(celllib.Phi1TrackHi)))
			lay.AddBox(layer.Poly, geom.R(gapLo, g.bufY+l(celllib.Phi2TrackLo), gapHi, g.bufY+l(celllib.Phi2TrackHi)))
		}
	}
	if nOut := len(a.Controls); nOut > 0 {
		// Clock tracks continue west across the PLA apron (for clock
		// drops into the channel) and east to the cell edge (for the
		// clock pad requests).
		first := g.outX(0) - l(celllib.CtlBufInX)
		last := g.outX(nOut-1) - l(celllib.CtlBufInX) + l(celllib.CtlBufWidth)
		lay.AddBox(layer.Poly, geom.R(l(4), g.bufY+l(celllib.Phi1TrackLo), first, g.bufY+l(celllib.Phi1TrackHi)))
		lay.AddBox(layer.Poly, geom.R(l(4), g.bufY+l(celllib.Phi2TrackLo), first, g.bufY+l(celllib.Phi2TrackHi)))
		// phi2 exits straight; phi1 jogs 12λ up before the edge so the two
		// pad connection points are far enough apart for separate wires.
		lay.AddBox(layer.Poly, geom.R(last, g.bufY+l(celllib.Phi1TrackLo), g.width-l(6), g.bufY+l(celllib.Phi1TrackHi)))
		lay.AddBox(layer.Poly, geom.R(last, g.bufY+l(celllib.Phi2TrackLo), g.width, g.bufY+l(celllib.Phi2TrackHi)))
		lay.AddBox(layer.Poly, geom.R(g.width-l(8), g.bufY+l(celllib.Phi1TrackLo), g.width-l(6), g.bufY+l(celllib.Phi1TrackLo+13)))
		lay.AddBox(layer.Poly, geom.R(g.width-l(8), g.bufY+l(celllib.Phi1TrackLo+11), g.width, g.bufY+l(celllib.Phi1TrackLo+13)))
		lay.AddLabel("phi1", geom.Pt(g.width-l(1), g.bufY+l(celllib.Phi1TrackLo+12)), layer.Poly)
		lay.AddLabel("phi2", geom.Pt(g.width-l(1), g.bufY+l(celllib.Phi2TrackLo+1)), layer.Poly)
		c.AddBristle(cell.Bristle{Name: "phi1", Side: cell.East, Offset: g.bufY + l(celllib.Phi1TrackLo+12), Layer: layer.Poly, Width: l(2), Flavor: cell.PadReq, Net: "phi1", PadClass: "phi1"})
		c.AddBristle(cell.Bristle{Name: "phi2", Side: cell.East, Offset: g.bufY + l(celllib.Phi2TrackLo+1), Layer: layer.Poly, Width: l(2), Flavor: cell.PadReq, Net: "phi2", PadClass: "phi2"})
		_ = first
	}

	// ---- Control channel: route each buffer's south poly line to the
	// core's control x position via a metal track. Track order is
	// constrained: when control j's destination drop runs close to control
	// i's source drop, j takes a lower track so i's source never passes
	// j's contact pad.
	// Every control's source drop crosses the tracks above its own on the
	// way down from the buffer row, and those tracks carry 4λ poly contact
	// pads: the clock pads on the top tracks, and every control's
	// destination pad. A drop landing within 4λ of any pad would short
	// poly to poly, so such a drop jogs sideways just below the buffer row
	// to a clear x before descending. With every source clear of every
	// pad, no track-order constraints arise and any assignment works.
	var pads []geom.Coord
	if len(clockX["phi2"]) > 0 {
		pads = append(pads, append([]geom.Coord{l(6)}, clockX["phi2"]...)...)
	}
	if len(clockX["phi1"]) > 0 {
		pads = append(pads, append([]geom.Coord{l(12)}, clockX["phi1"]...)...)
	}
	for _, sp := range a.Controls {
		if x, ok := ctlX[sp.Name]; ok {
			pads = append(pads, x)
		}
	}
	nearPad := func(x geom.Coord) bool {
		for _, p := range pads {
			d := x - p
			if d < 0 {
				d = -d
			}
			if d < l(4) {
				return true
			}
		}
		return false
	}

	names := make([]string, len(a.Controls))
	topOf := make(map[string]geom.Coord, len(a.Controls))
	srcOf := make(map[string]geom.Coord, len(a.Controls))
	dstOf := make(map[string]geom.Coord, len(a.Controls))
	for k, sp := range a.Controls {
		names[k] = sp.Name
		top := g.outX(k) - l(celllib.CtlBufInX) + l(celllib.CtlBufOutX)
		topOf[sp.Name] = top
		src := top
		if nearPad(src) {
			src = 0
			// Buffer outputs repeat on a 24λ grid, so a jog of up to 8λ
			// cannot reach a neighbour's drop.
			for _, d := range []geom.Coord{l(4), -l(4), l(6), -l(6), l(8), -l(8)} {
				if !nearPad(top + d) {
					src = top + d
					break
				}
			}
			if src == 0 {
				return nil, fmt.Errorf("decoder: control %s's channel drop cannot clear the contact pads", sp.Name)
			}
		}
		srcOf[sp.Name] = src
		if x, ok := ctlX[sp.Name]; ok {
			dstOf[sp.Name] = x
		} else {
			dstOf[sp.Name] = src
		}
	}
	sort.Strings(names)
	order, err := channelTrackOrder(names, srcOf, dstOf)
	if err != nil {
		return nil, err
	}
	trackOf := make(map[string]int, len(order))
	for t, n := range order {
		trackOf[n] = t
	}
	for _, sp := range a.Controls {
		ty := l(6) + geom.Coord(trackOf[sp.Name])*l(chanTrackPitch)
		routeChannel(lay, topOf[sp.Name], srcOf[sp.Name], g.bufY, dstOf[sp.Name], ty, sp.Name)
		out.CtlX[sp.Name] = dstOf[sp.Name]
	}

	// Clock drops: bus-precharge cells in the core need the clocks as
	// vertical poly lines at given core x positions; each clock gets one
	// shared channel track fed from the west end of its buffer-row track.
	if dsts := clockX["phi2"]; len(dsts) > 0 {
		ty := l(6) + geom.Coord(len(names))*l(chanTrackPitch)
		clockChannel(lay, l(6), g.bufY+l(celllib.Phi2TrackLo+1), ty, dsts, "phi2")
	}
	if dsts := clockX["phi1"]; len(dsts) > 0 {
		ty := l(6) + geom.Coord(len(names)+1)*l(chanTrackPitch)
		// The phi1 track lies above the phi2 track, so its drop crosses
		// phi2 on a short metal bypass before entering the channel.
		x := l(12)
		lay.AddBox(layer.Poly, geom.R(x-l(2), g.bufY+l(50), x+l(2), g.bufY+l(54)))
		lay.AddBox(layer.Contact, geom.R(x-l(1), g.bufY+l(51), x+l(1), g.bufY+l(53)))
		lay.AddBox(layer.Metal, geom.R(x-l(2), g.bufY+l(40), x+l(2), g.bufY+l(54)))
		lay.AddBox(layer.Poly, geom.R(x-l(2), g.bufY+l(40), x+l(2), g.bufY+l(44)))
		lay.AddBox(layer.Contact, geom.R(x-l(1), g.bufY+l(41), x+l(1), g.bufY+l(43)))
		clockChannel(lay, x, g.bufY+l(41), ty, dsts, "phi1")
	}

	// Full-width buffer-row rails (they also pick up the PLA ground strap
	// drop) and the matching power bristles.
	lay.AddBox(layer.Metal, geom.R(0, g.bufY, g.width, g.bufY+l(4)))
	lay.AddBox(layer.Metal, geom.R(l(gndStrapX+8), g.bufY+l(28), g.width-l(12), g.bufY+l(32)))
	if nTermG := g.nTerm; nTermG > 0 {
		// East-edge internal power hookups: the OR-plane ground strap
		// drops in metal to the buffer gnd rail; a metal riser joins the
		// buffer vdd rail to the output-pullup top rail.
		lay.AddBox(layer.Metal, geom.R(g.width-l(6), g.bufY, g.width-l(2), g.topY))
		lay.AddBox(layer.Metal, geom.R(g.width-l(14), g.bufY+l(28), g.width-l(10), g.topY+l(8)))
	}
	c.AddBristle(cell.Bristle{Name: "buf.gnd", Side: cell.West, Offset: g.bufY + l(2), Layer: layer.Metal, Width: l(4), Flavor: cell.Ground, Net: "gnd"})
	return out, nil
}

// channelTrackOrder topologically orders the channel tracks (index 0 =
// lowest) under the constraint "j below i when j's destination drop is
// within 4λ of i's source drop"; a constraint cycle is a compile error.
// Source drops are jogged clear of every destination pad by at least 4λ
// before this runs, so in practice no constraints (and no cycles) arise;
// the ordering remains as defense in depth.
func channelTrackOrder(names []string, srcOf, dstOf map[string]geom.Coord) ([]string, error) {
	below := make(map[string][]string) // i -> js that must be below i
	indeg := make(map[string]int)
	for _, n := range names {
		indeg[n] = 0
	}
	near := func(a, b geom.Coord) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d < geom.L(4)
	}
	for _, i := range names {
		for _, j := range names {
			if i == j {
				continue
			}
			if near(dstOf[j], srcOf[i]) {
				below[i] = append(below[i], j)
				indeg[j]++
			}
		}
	}
	// Kahn's algorithm, emitting highest tracks first (reverse at the end),
	// with name ties broken deterministically.
	var ready []string
	for _, n := range names {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	var topo []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		topo = append(topo, n)
		var next []string
		for _, j := range below[n] {
			indeg[j]--
			if indeg[j] == 0 {
				next = append(next, j)
			}
		}
		sort.Strings(next)
		ready = append(ready, next...)
	}
	if len(topo) != len(names) {
		return nil, fmt.Errorf("decoder: control channel constraints are cyclic; space the core's control lines differently")
	}
	// topo lists from highest track to lowest; reverse for track indexes.
	for a, b := 0, len(topo)-1; a < b; a, b = a+1, b-1 {
		topo[a], topo[b] = topo[b], topo[a]
	}
	return topo, nil
}

// clockChannel drops a clock from its buffer-row track (poly at srcX,
// trackTopY) down to a shared channel metal track at ty, with poly drops
// to the south edge at each destination x.
func clockChannel(lay *mask.Cell, srcX, trackTopY, ty geom.Coord, dsts []geom.Coord, name string) {
	// Poly drop from the buffer-row track to the channel track.
	lay.AddWire(layer.Poly, l(2), geom.Pt(srcX, trackTopY), geom.Pt(srcX, ty))
	lo, hi := srcX, srcX
	for _, x := range dsts {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	lay.AddBox(layer.Metal, geom.R(lo-l(2), ty-l(2), hi+l(2), ty+l(2)))
	for _, x := range append([]geom.Coord{srcX}, dsts...) {
		lay.AddBox(layer.Poly, geom.R(x-l(2), ty-l(2), x+l(2), ty+l(2)))
		lay.AddBox(layer.Contact, geom.R(x-l(1), ty-l(1), x+l(1), ty+l(1)))
	}
	for _, x := range dsts {
		lay.AddWire(layer.Poly, l(2), geom.Pt(x, ty), geom.Pt(x, 0))
		lay.AddLabel(name, geom.Pt(x, l(1)), layer.Poly)
	}
}

// routeChannel drops a control from the buffer output (poly at topX,
// bufY) to track y=ty, runs a metal track to dstX, and drops poly to the
// south edge. When the descent would cross a clock pad, srcX differs from
// topX and the drop jogs sideways just below the buffer row first.
func routeChannel(lay *mask.Cell, topX, srcX, bufY, dstX, ty geom.Coord, name string) {
	if topX == srcX && srcX == dstX {
		lay.AddWire(layer.Poly, l(2), geom.Pt(srcX, bufY), geom.Pt(srcX, 0))
		lay.AddLabel(name, geom.Pt(srcX, l(1)), layer.Poly)
		return
	}
	// Poly drop from the buffer to the track, jogging at bufY-4λ if the
	// straight descent is blocked.
	if topX == srcX {
		lay.AddWire(layer.Poly, l(2), geom.Pt(srcX, bufY), geom.Pt(srcX, ty))
	} else {
		lay.AddWire(layer.Poly, l(2),
			geom.Pt(topX, bufY),
			geom.Pt(topX, bufY-l(4)),
			geom.Pt(srcX, bufY-l(4)),
			geom.Pt(srcX, ty))
	}
	// Contact pads at both ends of the metal track.
	for _, x := range []geom.Coord{srcX, dstX} {
		lay.AddBox(layer.Poly, geom.R(x-l(2), ty-l(2), x+l(2), ty+l(2)))
		lay.AddBox(layer.Contact, geom.R(x-l(1), ty-l(1), x+l(1), ty+l(1)))
	}
	lo, hi := srcX, dstX
	if lo > hi {
		lo, hi = hi, lo
	}
	lay.AddBox(layer.Metal, geom.R(lo-l(2), ty-l(2), hi+l(2), ty+l(2)))
	// Poly drop from the track to the south edge.
	lay.AddWire(layer.Poly, l(2), geom.Pt(dstX, ty), geom.Pt(dstX, 0))
	lay.AddLabel(name, geom.Pt(dstX, l(1)), layer.Poly)
}

// stampLeaf copies a leaf library cell's layout into lay with net renaming
// (the decoder is assembled as one leaf for extraction simplicity).
func stampLeaf(c *cell.Cell, sub *cell.Cell, t geom.Transform, rename map[string]string) {
	lay := c.Layout
	final := func(n string) string {
		if r, ok := rename[n]; ok {
			return r
		}
		return sub.Name + "." + n
	}
	for _, b := range sub.Layout.Boxes {
		lay.AddBox(b.Layer, t.ApplyRect(b.R))
	}
	for _, w := range sub.Layout.Wires {
		pts := make([]geom.Point, len(w.Path))
		for i, p := range w.Path {
			pts[i] = t.Apply(p)
		}
		lay.AddWire(w.Layer, w.Width, pts...)
	}
	for _, lb := range sub.Layout.Labels {
		lay.AddLabel(final(lb.Text), t.Apply(lb.At), lb.Layer)
	}
	if sub.Netlist != nil {
		c.Netlist.Merge(prefixNetlist(sub.Netlist, sub.Name, rename))
	}
}

// prefixNetlist renames a sub-netlist: mapped nets get their final names,
// others are prefixed.
func prefixNetlist(nl *transistor.Netlist, prefix string, rename map[string]string) *transistor.Netlist {
	out := nl.Copy()
	m := make(map[string]string)
	for _, n := range out.Nets() {
		if r, ok := rename[n]; ok {
			m[n] = r
		} else {
			m[n] = prefix + "." + n
		}
	}
	out.Rename(m)
	return out
}

// AreaSavedLambda2 reports the PLA area (λ²) the optimizer won: the
// footprint a decoder with the pre-optimization term and input counts
// would have needed, minus the built decoder's footprint. Term rows save
// plaRowPitch × width each; a folded input column saves two literal lines
// (2 × andColPitch) across the full height.
func (r *Result) AreaSavedLambda2() float64 {
	nOut := len(r.Array.Controls)
	before := computeGeom(r.Stats.InputsBefore, r.Stats.TermsBefore, nOut, nOut+2)
	after := computeGeom(r.Stats.InputsAfter, r.Stats.TermsAfter, nOut, nOut+2)
	return geom.InLambda(before.width)*geom.InLambda(before.height) -
		geom.InLambda(after.width)*geom.InLambda(after.height)
}
