package decoder

import (
	"fmt"
	"sort"
	"strings"

	"bristleblocks/internal/logic"
)

// ControlSpec is one control signal requirement collected from the core's
// control bristles: a name, the decode function over microcode fields, and
// the clock phase on which the signal must be valid.
type ControlSpec struct {
	Name  string
	Guard string
	Phase int
}

// Term is one row of the text array (the PLA personality matrix): a
// product term over microcode bits plus the set of control outputs it
// feeds.
type Term struct {
	In   Cube
	Outs []bool
}

// Array is the text array Pass 2 builds: "an text array is constructed
// which specifies the decode functions needed for each buffer".
type Array struct {
	Format   *Format
	Controls []ControlSpec
	Terms    []Term

	guards []guardExpr
}

// BuildArray parses every control guard and assembles the unoptimized text
// array, one group of terms per control.
func BuildArray(f *Format, specs []ControlSpec) (*Array, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	a := &Array{Format: f, Controls: append([]ControlSpec(nil), specs...)}
	seen := make(map[string]bool)
	for i, sp := range specs {
		if sp.Name == "" {
			return nil, fmt.Errorf("control %d has no name", i)
		}
		if seen[sp.Name] {
			return nil, fmt.Errorf("duplicate control %q", sp.Name)
		}
		seen[sp.Name] = true
		if sp.Phase != 1 && sp.Phase != 2 {
			return nil, fmt.Errorf("control %q: phase %d (want 1 or 2)", sp.Name, sp.Phase)
		}
		g, err := ParseGuard(sp.Guard)
		if err != nil {
			return nil, fmt.Errorf("control %q: %w", sp.Name, err)
		}
		a.guards = append(a.guards, g)
		cubes, err := guardSOP(g, f)
		if err != nil {
			return nil, fmt.Errorf("control %q: %w", sp.Name, err)
		}
		for _, c := range cubes {
			outs := make([]bool, len(specs))
			outs[i] = true
			a.Terms = append(a.Terms, Term{In: c, Outs: outs})
		}
	}
	return a, nil
}

// Eval computes the decoded value of control index i for a microcode word
// using the text array (not the original guard — tests compare the two).
func (a *Array) Eval(i int, micro uint64) bool {
	for _, t := range a.Terms {
		if t.Outs[i] && t.In.matches(micro) {
			return true
		}
	}
	return false
}

// EvalGuard computes the control value from the original guard expression.
func (a *Array) EvalGuard(i int, micro uint64) (bool, error) {
	return a.guards[i].eval(a.Format, micro)
}

// OptStats reports what optimization achieved.
type OptStats struct {
	TermsBefore, TermsAfter       int
	LiteralsBefore, LiteralsAfter int
	InputsBefore, InputsAfter     int
}

// Optimize improves the array: duplicate product terms are shared across
// outputs, terms identical except in one input bit merge into a single
// don't-care term, and terms feeding no output vanish. This is the
// "generated and optimized the instruction decoder" step; A3 in
// EXPERIMENTS.md measures its effect.
func (a *Array) Optimize() OptStats {
	st := OptStats{
		TermsBefore:    len(a.Terms),
		LiteralsBefore: a.literalCount(),
		InputsBefore:   len(a.UsedInputs()),
	}
	changed := true
	for changed {
		changed = false
		// 1. Share identical cubes.
		byCube := make(map[string]int)
		var kept []Term
		for _, t := range a.Terms {
			key := string(t.In)
			if j, ok := byCube[key]; ok {
				for k, v := range t.Outs {
					if v {
						kept[j].Outs[k] = true
					}
				}
				changed = true
				continue
			}
			byCube[key] = len(kept)
			kept = append(kept, t)
		}
		a.Terms = kept

		// 2. Merge distance-1 cubes with identical output sets.
		for i := 0; i < len(a.Terms); i++ {
			for j := i + 1; j < len(a.Terms); j++ {
				if !sameOuts(a.Terms[i].Outs, a.Terms[j].Outs) {
					continue
				}
				if m, ok := combine(a.Terms[i].In, a.Terms[j].In); ok {
					a.Terms[i].In = m
					a.Terms = append(a.Terms[:j], a.Terms[j+1:]...)
					changed = true
					j--
				}
			}
		}

		// 3. Drop output-less terms (can appear via user guards of "0").
		var nonEmpty []Term
		for _, t := range a.Terms {
			any := false
			for _, v := range t.Outs {
				any = any || v
			}
			if any {
				nonEmpty = append(nonEmpty, t)
			} else {
				changed = true
			}
		}
		a.Terms = nonEmpty
	}
	a.sortTerms()
	st.TermsAfter = len(a.Terms)
	st.LiteralsAfter = a.literalCount()
	st.InputsAfter = len(a.UsedInputs())
	return st
}

// sortTerms puts the array in a canonical deterministic order.
func (a *Array) sortTerms() {
	sort.SliceStable(a.Terms, func(i, j int) bool {
		return string(a.Terms[i].In) < string(a.Terms[j].In)
	})
}

func (a *Array) literalCount() int {
	n := 0
	for _, t := range a.Terms {
		for _, c := range t.In {
			if c != '-' {
				n++
			}
		}
	}
	return n
}

func sameOuts(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// combine merges two cubes differing in exactly one specified bit.
func combine(a, b Cube) (Cube, bool) {
	diff := -1
	for i := range a {
		if a[i] == b[i] {
			continue
		}
		if a[i] == '-' || b[i] == '-' || diff != -1 {
			return nil, false
		}
		diff = i
	}
	if diff == -1 { // identical (handled elsewhere, but merging is fine)
		return a, true
	}
	out := append(Cube(nil), a...)
	out[diff] = '-'
	return out, true
}

// UsedInputs lists the microcode bit positions any term actually tests —
// the PLA only needs input columns for these.
func (a *Array) UsedInputs() []int {
	used := make([]bool, a.Format.Width)
	for _, t := range a.Terms {
		for i, c := range t.In {
			if c != '-' {
				used[i] = true
			}
		}
	}
	var out []int
	for i, u := range used {
		if u {
			out = append(out, i)
		}
	}
	return out
}

// TapeText linearizes the array for the two-tape Turing machine: for each
// term, the input cube characters over the used input columns, then ':',
// then '1'/'.' per output, then '|'; the array ends with '#'.
func (a *Array) TapeText() string {
	inputs := a.UsedInputs()
	var sb strings.Builder
	for _, t := range a.Terms {
		for _, i := range inputs {
			sb.WriteByte(t.In[i])
		}
		sb.WriteByte(':')
		for _, v := range t.Outs {
			if v {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('|')
	}
	sb.WriteByte('#')
	return sb.String()
}

// Logic builds the Logic-level representation of the decoder: per-term AND
// gates over microcode bit nets u<i> (with explicit inverters for
// complemented literals) and per-control OR gates. Controls with no terms
// become constant-0 buffers.
func (a *Array) Logic() *logic.Diagram {
	d := &logic.Diagram{}
	inputs := a.UsedInputs()
	invMade := make(map[int]bool)
	for _, i := range inputs {
		d.Inputs = append(d.Inputs, fmt.Sprintf("u%d", i))
	}
	termNets := make([]string, len(a.Terms))
	for ti, t := range a.Terms {
		var ins []string
		for _, i := range inputs {
			switch t.In[i] {
			case '1':
				ins = append(ins, fmt.Sprintf("u%d", i))
			case '0':
				inv := fmt.Sprintf("nu%d", i)
				if !invMade[i] {
					d.AddGate(logic.Inv, inv, fmt.Sprintf("u%d", i))
					invMade[i] = true
				}
				ins = append(ins, inv)
			}
		}
		net := fmt.Sprintf("t%d", ti)
		termNets[ti] = net
		if len(ins) == 0 {
			d.AddGate(logic.Buf, net, "1")
		} else {
			d.AddGate(logic.And, net, ins...)
		}
	}
	for ci, sp := range a.Controls {
		var ins []string
		for ti, t := range a.Terms {
			if t.Outs[ci] {
				ins = append(ins, termNets[ti])
			}
		}
		switch len(ins) {
		case 0:
			d.AddGate(logic.Buf, sp.Name, "0")
		case 1:
			d.AddGate(logic.Buf, sp.Name, ins[0])
		default:
			d.AddGate(logic.Or, sp.Name, ins...)
		}
		d.Outputs = append(d.Outputs, sp.Name)
	}
	return d
}
