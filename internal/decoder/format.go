// Package decoder implements Pass 2 of the compiler: control design. It
// models the microcode instruction format, parses the guard expressions on
// control bristles into sum-of-products decode functions, builds and
// optimizes the text array, programs the two-tape Turing machine that
// transduces the array into silicon code, generates the PLA layout and
// control-buffer row, and produces the simulation decoder and logic
// diagram for the same functions.
package decoder

import (
	"fmt"
	"strings"
)

// Field is one named bit field of the microcode word.
type Field struct {
	Name string
	// Lo is the field's least significant bit position in the word; Width
	// its size in bits.
	Lo, Width int
}

// Format describes the microcode instruction: its total width and the
// decomposition into fields ("the first section states the microcode
// instruction width and describes the decomposition of the microcode word
// into various fields").
type Format struct {
	Width  int
	Fields []Field
}

// Validate checks field sanity: names unique and nonempty, ranges within
// the word, no overlaps.
func (f *Format) Validate() error {
	if f.Width < 1 || f.Width > 64 {
		return fmt.Errorf("microcode width %d out of range 1..64", f.Width)
	}
	used := make([]string, f.Width)
	seen := make(map[string]bool)
	for _, fd := range f.Fields {
		if fd.Name == "" {
			return fmt.Errorf("unnamed microcode field")
		}
		if seen[fd.Name] {
			return fmt.Errorf("duplicate microcode field %q", fd.Name)
		}
		seen[fd.Name] = true
		if fd.Width < 1 || fd.Lo < 0 || fd.Lo+fd.Width > f.Width {
			return fmt.Errorf("field %q range [%d,%d) outside %d-bit word",
				fd.Name, fd.Lo, fd.Lo+fd.Width, f.Width)
		}
		for b := fd.Lo; b < fd.Lo+fd.Width; b++ {
			if used[b] != "" {
				return fmt.Errorf("fields %q and %q overlap at bit %d", used[b], fd.Name, b)
			}
			used[b] = fd.Name
		}
	}
	return nil
}

// FieldByName finds a field.
func (f *Format) FieldByName(name string) (Field, bool) {
	for _, fd := range f.Fields {
		if fd.Name == name {
			return fd, true
		}
	}
	return Field{}, false
}

// Extract reads the field's value from a microcode word.
func (f *Format) Extract(fd Field, micro uint64) uint64 {
	return (micro >> uint(fd.Lo)) & ((1 << uint(fd.Width)) - 1)
}

// ParseFormat reads a format description of the form
//
//	width 16; OP 0 4; SRC 4 3; DST 7 3; EN 10 1
//
// (semicolon- or newline-separated clauses: a "width N" clause plus
// "NAME lo width" field clauses).
func ParseFormat(src string) (*Format, error) {
	f := &Format{}
	clauses := splitClauses(src)
	for _, cl := range clauses {
		toks := strings.Fields(cl)
		if len(toks) == 0 {
			continue
		}
		switch {
		case strings.EqualFold(toks[0], "width"):
			if len(toks) != 2 {
				return nil, fmt.Errorf("bad width clause %q", cl)
			}
			if _, err := fmt.Sscanf(toks[1], "%d", &f.Width); err != nil {
				return nil, fmt.Errorf("bad width %q", toks[1])
			}
		default:
			if len(toks) != 3 {
				return nil, fmt.Errorf("bad field clause %q (want NAME lo width)", cl)
			}
			var lo, w int
			if _, err := fmt.Sscanf(toks[1], "%d", &lo); err != nil {
				return nil, fmt.Errorf("bad field lo %q", toks[1])
			}
			if _, err := fmt.Sscanf(toks[2], "%d", &w); err != nil {
				return nil, fmt.Errorf("bad field width %q", toks[2])
			}
			f.Fields = append(f.Fields, Field{Name: toks[0], Lo: lo, Width: w})
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

func splitClauses(src string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		for _, cl := range strings.Split(line, ";") {
			cl = strings.TrimSpace(cl)
			if cl != "" {
				out = append(out, cl)
			}
		}
	}
	return out
}
