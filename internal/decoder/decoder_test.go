package decoder

import (
	"fmt"
	"testing"
	"testing/quick"

	"bristleblocks/internal/tm"
)

func fmt16(t *testing.T) *Format {
	t.Helper()
	f, err := ParseFormat("width 10; OP 0 3; SRC 3 3; DST 6 3; EN 9 1")
	if err != nil {
		t.Fatalf("ParseFormat: %v", err)
	}
	return f
}

func TestParseFormat(t *testing.T) {
	f := fmt16(t)
	if f.Width != 10 || len(f.Fields) != 4 {
		t.Fatalf("format = %+v", f)
	}
	fd, ok := f.FieldByName("SRC")
	if !ok || fd.Lo != 3 || fd.Width != 3 {
		t.Errorf("SRC = %+v", fd)
	}
	if got := f.Extract(fd, 0b101_110_011); got != 0b110 {
		t.Errorf("Extract = %b", got)
	}
}

func TestParseFormatErrors(t *testing.T) {
	cases := []string{
		"OP 0 4",                  // no width
		"width 0; OP 0 1",         // zero width
		"width 80; OP 0 1",        // too wide
		"width 8; OP 0 4; OP 4 4", // duplicate name
		"width 8; OP 0 4; XX 2 4", // overlap
		"width 8; OP 6 4",         // out of range
		"width 8; OP x 4",         // bad number
		"width 8; OP 0",           // short clause
		"width x; OP 0 2",         // bad width
	}
	for _, src := range cases {
		if _, err := ParseFormat(src); err == nil {
			t.Errorf("ParseFormat(%q) should fail", src)
		}
	}
}

func TestGuardEval(t *testing.T) {
	f := fmt16(t)
	cases := []struct {
		guard string
		micro uint64
		want  bool
	}{
		{"OP=3", 3, true},
		{"OP=3", 4, false},
		{"OP=3 & EN", 3, false},
		{"OP=3 & EN", 3 | 1<<9, true},
		{"OP=1 | OP=2", 2, true},
		{"!(OP=0)", 0, false},
		{"!(OP=0)", 5, true},
		{"SRC[1]", 2 << 3, true},
		{"SRC[1]", 1 << 3, false},
		{"EN", 1 << 9, true},
		{"1", 12345, true},
		{"0", 12345, false},
		{"(OP=1 | OP=2) & !EN", 1, true},
		{"(OP=1 | OP=2) & !EN", 1 | 1<<9, false},
	}
	for _, c := range cases {
		g, err := ParseGuard(c.guard)
		if err != nil {
			t.Fatalf("ParseGuard(%q): %v", c.guard, err)
		}
		got, err := g.eval(f, c.micro)
		if err != nil {
			t.Fatalf("eval(%q, %#x): %v", c.guard, c.micro, err)
		}
		if got != c.want {
			t.Errorf("%q at %#x = %v, want %v", c.guard, c.micro, got, c.want)
		}
	}
}

func TestGuardParseErrors(t *testing.T) {
	cases := []string{
		"", "OP=", "OP==3", "(OP=1", "OP=1)", "OP[x]", "OP[1", "&",
		"OP=1 &", "#$%",
	}
	for _, src := range cases {
		if _, err := ParseGuard(src); err == nil {
			t.Errorf("ParseGuard(%q) should fail", src)
		}
	}
}

func TestGuardSemanticErrors(t *testing.T) {
	f := fmt16(t)
	for _, src := range []string{"BOGUS=1", "OP=9", "OP[5]"} {
		g, err := ParseGuard(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := guardSOP(g, f); err == nil {
			t.Errorf("guardSOP(%q) should fail", src)
		}
	}
}

// TestSOPMatchesEval: the sum-of-products expansion must agree with direct
// AST evaluation on every microcode word (exhaustive over 10 bits).
func TestSOPMatchesEval(t *testing.T) {
	f := fmt16(t)
	guards := []string{
		"OP=3", "OP=3 & EN", "OP=1 | OP=2", "!(OP=5)", "!(OP=5 & EN)",
		"SRC[2] & !DST[0]", "(OP=1 | OP=2) & (SRC=3 | !EN)", "1", "0",
		"!(OP=1 | SRC=2)",
	}
	for _, src := range guards {
		g, err := ParseGuard(src)
		if err != nil {
			t.Fatal(err)
		}
		cubes, err := guardSOP(g, f)
		if err != nil {
			t.Fatalf("guardSOP(%q): %v", src, err)
		}
		for micro := uint64(0); micro < 1<<10; micro++ {
			want, _ := g.eval(f, micro)
			got := false
			for _, c := range cubes {
				if c.matches(micro) {
					got = true
					break
				}
			}
			if got != want {
				t.Fatalf("%q: SOP disagrees with eval at %#x (sop=%v want=%v)", src, micro, got, want)
			}
		}
	}
}

func testSpecs() []ControlSpec {
	return []ControlSpec{
		{Name: "r0.ld", Guard: "OP=1 & EN", Phase: 1},
		{Name: "r0.rd", Guard: "OP=2 & EN", Phase: 1},
		{Name: "alu.op", Guard: "OP=4 | OP=5", Phase: 2},
		{Name: "alu.rd", Guard: "OP=5 & EN", Phase: 1},
		{Name: "dup", Guard: "OP=1 & EN", Phase: 2}, // shares terms with r0.ld
	}
}

func TestBuildArrayAndOptimize(t *testing.T) {
	f := fmt16(t)
	a, err := BuildArray(f, testSpecs())
	if err != nil {
		t.Fatalf("BuildArray: %v", err)
	}
	// Before optimization every control contributed its own cubes.
	st := a.Optimize()
	if st.TermsAfter >= st.TermsBefore {
		t.Errorf("optimization did not shrink terms: %+v", st)
	}
	// Term sharing: r0.ld and dup have identical guards -> one shared term.
	shared := 0
	for _, tm := range a.Terms {
		if tm.Outs[0] && tm.Outs[4] {
			shared++
		}
	}
	if shared != 1 {
		t.Errorf("expected one shared term for identical guards, got %d", shared)
	}
	// alu.op = OP=4 | OP=5 = OP[2] & !OP[1] merges to one cube "-01" style.
	aluTerms := 0
	for _, tm := range a.Terms {
		if tm.Outs[2] {
			aluTerms++
		}
	}
	if aluTerms != 1 {
		t.Errorf("OP=4|OP=5 should merge to one term, got %d", aluTerms)
	}
}

// TestArrayEquivalence: after optimization the array must still compute
// exactly the guard functions (exhaustive).
func TestArrayEquivalence(t *testing.T) {
	f := fmt16(t)
	a, err := BuildArray(f, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	a.Optimize()
	for i := range a.Controls {
		for micro := uint64(0); micro < 1<<10; micro++ {
			want, err := a.EvalGuard(i, micro)
			if err != nil {
				t.Fatal(err)
			}
			if got := a.Eval(i, micro); got != want {
				t.Fatalf("control %s at %#x: array=%v guard=%v",
					a.Controls[i].Name, micro, got, want)
			}
		}
	}
}

// TestLogicMatchesArray: the Logic-level diagram must compute the same
// functions as the array.
func TestLogicMatchesArray(t *testing.T) {
	f := fmt16(t)
	a, err := BuildArray(f, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	a.Optimize()
	d := a.Logic()
	if err := d.Validate(); err != nil {
		t.Fatalf("logic diagram invalid: %v", err)
	}
	checkMicro := func(micro uint64) bool {
		in := make(map[string]bool)
		for _, bit := range a.UsedInputs() {
			in[nameU(bit)] = micro>>uint(bit)&1 == 1
		}
		vals, err := d.Eval(in, nil)
		if err != nil {
			return false
		}
		for i, sp := range a.Controls {
			if vals[sp.Name] != a.Eval(i, micro) {
				return false
			}
		}
		return true
	}
	fquick := func(m uint16) bool { return checkMicro(uint64(m) & 0x3FF) }
	if err := quick.Check(fquick, nil); err != nil {
		t.Error(err)
	}
}

func nameU(bit int) string { return fmt.Sprintf("u%d", bit) }

func TestBuildArrayErrors(t *testing.T) {
	f := fmt16(t)
	cases := [][]ControlSpec{
		{{Name: "", Guard: "OP=1", Phase: 1}},
		{{Name: "a", Guard: "OP=1", Phase: 1}, {Name: "a", Guard: "OP=2", Phase: 1}},
		{{Name: "a", Guard: "OP=1", Phase: 3}},
		{{Name: "a", Guard: "BOGUS=1", Phase: 1}},
		{{Name: "a", Guard: "((", Phase: 1}},
	}
	for i, specs := range cases {
		if _, err := BuildArray(f, specs); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestTuringMachineTransduction(t *testing.T) {
	f := fmt16(t)
	a, err := BuildArray(f, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	a.Optimize()
	ops, err := CompileSilicon(a)
	if err != nil {
		t.Fatalf("CompileSilicon: %v", err)
	}
	grid, err := parseOps(ops)
	if err != nil {
		t.Fatalf("parseOps: %v", err)
	}
	if len(grid.rows) != len(a.Terms) {
		t.Errorf("grid rows %d != terms %d", len(grid.rows), len(a.Terms))
	}
	if grid.andWidth != len(a.UsedInputs()) || grid.orWidth != len(a.Controls) {
		t.Errorf("grid %dx%d", grid.andWidth, grid.orWidth)
	}
	// Each op row reproduces the cube and outputs.
	inputs := a.UsedInputs()
	for r, row := range grid.rows {
		for i, bit := range inputs {
			var want string
			switch a.Terms[r].In[bit] {
			case '0':
				want = string(OpAnd0)
			case '1':
				want = string(OpAnd1)
			default:
				want = string(OpAndX)
			}
			if string(row[i]) != want {
				t.Fatalf("row %d col %d: op %s want %s", r, i, row[i], want)
			}
		}
		for k := range a.Controls {
			want := OpOr0
			if a.Terms[r].Outs[k] {
				want = OpOr1
			}
			if row[grid.andWidth+k] != want {
				t.Fatalf("row %d out %d: op %s want %s", r, k, row[grid.andWidth+k], want)
			}
		}
	}
}

func TestTuringMachineRejectsGarbage(t *testing.T) {
	// The machine rejects a malformed text array.
	m := DecoderMachine()
	t1 := tm.NewTape(m.Blank, tm.Symbols("01z:1|#"))
	t2 := tm.NewTape(m.Blank, nil)
	res, err := m.Run(t1, t2, 0)
	if err != nil || res.Final != m.Reject {
		t.Errorf("garbage tape: final=%v err=%v", res.Final, err)
	}
	if _, err := parseOps(nil); err == nil {
		t.Error("empty op stream should fail (no end marker)")
	}
}

func TestParseOpsErrors(t *testing.T) {
	cases := [][]string{
		{"o1", "row", "end"},                                              // OR before separator
		{"a1", "row", "end"},                                              // row before separator
		{"a1", "sep", "sep", "o1", "row", "end"},                          // double separator
		{"a1", "sep", "a1", "row", "end"},                                 // AND after separator
		{"a1", "sep", "o1", "end"},                                        // end inside a row
		{"a1", "sep", "o1", "row", "a1", "a0", "sep", "o1", "row", "end"}, // ragged
		{"zz", "end"},                                                     // unknown op
		{"a1", "sep", "o1", "row"},                                        // missing end
	}
	for i, c := range cases {
		var syms []tm.Symbol
		for _, s := range c {
			syms = append(syms, tm.Symbol(s))
		}
		if _, err := parseOps(syms); err == nil {
			t.Errorf("case %d should fail: %v", i, c)
		}
	}
}
