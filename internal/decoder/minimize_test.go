package decoder

import (
	"testing"
	"testing/quick"
)

// minSpecs is a guard set that exercises the whole decode language and
// leaves the minimizer real work: the bridge guard's sum-of-products form
// is a pile of pairwise-overlapping cubes (De Morgan expansion of two
// negated equalities) that the seed optimizer's disjoint distance-1 merge
// cannot touch, plus OR-of-equality guards, bit tests, and a duplicated
// guard for term sharing.
func minSpecs() []ControlSpec {
	return []ControlSpec{
		{Name: "x.bridge", Guard: "!(OP=0) & !(OP=7)", Phase: 1},
		{Name: "m.ld", Guard: "(OP=1 | OP=3) & SRC=2", Phase: 1},
		{Name: "m.rd", Guard: "OP=2 & !(DST=5)", Phase: 1},
		{Name: "e.en", Guard: "EN & !(SRC=0)", Phase: 2},
		{Name: "o.any", Guard: "OP[0] | OP[2]", Phase: 1},
		{Name: "dup", Guard: "(OP=1 | OP=3) & SRC=2", Phase: 2},
	}
}

// TestMinimizedEquivalent pins the minimizer's only hard promise: the
// minimized array computes exactly the guard functions. The 10-bit format
// is checked exhaustively (the ≤12-input regime); a 16-bit format is
// checked by sampling.
func TestMinimizedEquivalent(t *testing.T) {
	f := fmt16(t)
	a, err := BuildArray(f, minSpecs())
	if err != nil {
		t.Fatal(err)
	}
	st := a.MinimizeAndOptimize(0)
	if st.TermsAfter > st.TermsBefore {
		t.Errorf("minimization grew the cover: %+v", st)
	}
	for i := range a.Controls {
		for micro := uint64(0); micro < 1<<10; micro++ {
			want, err := a.EvalGuard(i, micro)
			if err != nil {
				t.Fatal(err)
			}
			if got := a.Eval(i, micro); got != want {
				t.Fatalf("control %s at %#x: array=%v guard=%v",
					a.Controls[i].Name, micro, got, want)
			}
		}
	}

	wide, err := ParseFormat("width 16; OP 0 4; A 4 4; B 8 4; EN 15 1")
	if err != nil {
		t.Fatal(err)
	}
	wspecs := []ControlSpec{
		{Name: "w.bridge", Guard: "!(OP=0) & !(OP=15)", Phase: 1},
		{Name: "w.ld", Guard: "(OP=2 | OP=6) & !(A=9)", Phase: 1},
		{Name: "w.en", Guard: "EN & (B=1 | B=2 | B=3)", Phase: 2},
	}
	w, err := BuildArray(wide, wspecs)
	if err != nil {
		t.Fatal(err)
	}
	w.MinimizeAndOptimize(0)
	sample := func(m uint16) bool {
		micro := uint64(m)
		for i := range w.Controls {
			want, err := w.EvalGuard(i, micro)
			if err != nil || w.Eval(i, micro) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(sample, nil); err != nil {
		t.Error(err)
	}
}

// TestMinimizeDeterministic pins byte-identical output at every pool
// size: the per-output fan-out must be invisible in the linearized tape.
func TestMinimizeDeterministic(t *testing.T) {
	f := fmt16(t)
	var tapes []string
	for _, par := range []int{1, 4, 8} {
		a, err := BuildArray(f, minSpecs())
		if err != nil {
			t.Fatal(err)
		}
		a.MinimizeAndOptimize(par)
		tapes = append(tapes, a.TapeText())
	}
	for i := 1; i < len(tapes); i++ {
		if tapes[i] != tapes[0] {
			t.Fatalf("tape differs between parallelism 1 and %d:\n%s\nvs\n%s",
				[]int{1, 4, 8}[i], tapes[0], tapes[i])
		}
	}
}

// TestMinimizeBeatsOptimize pins the capability gap the minimizer was
// added for: on an overlapping cover the Espresso-style expansion merges
// terms the seed optimizer cannot, and the baseline compare keeps the
// better result.
func TestMinimizeBeatsOptimize(t *testing.T) {
	f := fmt16(t)
	plain, err := BuildArray(f, minSpecs())
	if err != nil {
		t.Fatal(err)
	}
	stPlain := plain.Optimize()

	min, err := BuildArray(f, minSpecs())
	if err != nil {
		t.Fatal(err)
	}
	stMin := min.MinimizeAndOptimize(0)

	if stMin.TermsAfter >= stPlain.TermsAfter {
		t.Errorf("minimizer should beat the seed optimizer here: minimized %d terms, optimized %d",
			stMin.TermsAfter, stPlain.TermsAfter)
	}
}
