package decoder

import (
	"fmt"

	"bristleblocks/internal/tm"
)

// Silicon-code ops: the symbols the two-tape Turing machine writes on its
// second tape. The PLA layout builder consumes exactly this op stream.
const (
	// OpAnd0 places an AND-plane transistor on the true input column
	// (term requires the bit to be 0).
	OpAnd0 = tm.Symbol("a0")
	// OpAnd1 places an AND-plane transistor on the complement column
	// (term requires the bit to be 1).
	OpAnd1 = tm.Symbol("a1")
	// OpAndX leaves the crosspoint empty.
	OpAndX = tm.Symbol("ax")
	// OpSep marks the AND/OR plane boundary within a row.
	OpSep = tm.Symbol("sep")
	// OpOr1 places an OR-plane transistor (term feeds this output).
	OpOr1 = tm.Symbol("o1")
	// OpOr0 leaves the OR crosspoint empty.
	OpOr0 = tm.Symbol("o0")
	// OpRow ends a PLA row.
	OpRow = tm.Symbol("row")
	// OpEnd ends the PLA.
	OpEnd = tm.Symbol("end")
)

// DecoderMachine programs the paper's two-tape Turing machine: tape 1
// holds the text array (TapeText), tape 2 receives compiled silicon code.
func DecoderMachine() *tm.Machine {
	m := tm.NewMachine("and", "accept", "reject")
	// AND-plane scan.
	m.Add("and", "0", tm.Wildcard, "and", tm.Wildcard, OpAnd0, tm.Right, tm.Right)
	m.Add("and", "1", tm.Wildcard, "and", tm.Wildcard, OpAnd1, tm.Right, tm.Right)
	m.Add("and", "-", tm.Wildcard, "and", tm.Wildcard, OpAndX, tm.Right, tm.Right)
	m.Add("and", ":", tm.Wildcard, "or", tm.Wildcard, OpSep, tm.Right, tm.Right)
	m.Add("and", "#", tm.Wildcard, "accept", tm.Wildcard, OpEnd, tm.Stay, tm.Stay)
	// OR-plane scan.
	m.Add("or", "1", tm.Wildcard, "or", tm.Wildcard, OpOr1, tm.Right, tm.Right)
	m.Add("or", ".", tm.Wildcard, "or", tm.Wildcard, OpOr0, tm.Right, tm.Right)
	m.Add("or", "|", tm.Wildcard, "and", tm.Wildcard, OpRow, tm.Right, tm.Right)
	// Anything else is a malformed array.
	m.Add("and", tm.Wildcard, tm.Wildcard, "reject", tm.Wildcard, tm.Wildcard, tm.Stay, tm.Stay)
	m.Add("or", tm.Wildcard, tm.Wildcard, "reject", tm.Wildcard, tm.Wildcard, tm.Stay, tm.Stay)
	return m
}

// CompileSilicon runs the Turing machine over the array's tape text and
// returns the silicon-code op stream from tape 2.
func CompileSilicon(a *Array) ([]tm.Symbol, error) {
	m := DecoderMachine()
	t1 := tm.NewTape(m.Blank, tm.Symbols(a.TapeText()))
	t2 := tm.NewTape(m.Blank, nil)
	res, err := m.Run(t1, t2, 0)
	if err != nil {
		return nil, fmt.Errorf("decoder: turing machine failed: %w", err)
	}
	if res.Final != m.Accept {
		return nil, fmt.Errorf("decoder: turing machine rejected the text array")
	}
	return t2.Contents(), nil
}

// opGrid reconstructs the row structure from a silicon-code op stream,
// validating that every row has the same AND width and OR width.
type opGrid struct {
	andWidth int
	orWidth  int
	// rows[r][c] for c < andWidth is OpAnd?; beyond it is OpOr?.
	rows [][]tm.Symbol
}

func parseOps(ops []tm.Symbol) (*opGrid, error) {
	g := &opGrid{andWidth: -1, orWidth: -1}
	var row []tm.Symbol
	andCount, orCount := 0, 0
	inOr := false
	for _, op := range ops {
		switch op {
		case OpAnd0, OpAnd1, OpAndX:
			if inOr {
				return nil, fmt.Errorf("decoder: AND op after separator")
			}
			row = append(row, op)
			andCount++
		case OpSep:
			if inOr {
				return nil, fmt.Errorf("decoder: duplicate separator in row")
			}
			inOr = true
		case OpOr0, OpOr1:
			if !inOr {
				return nil, fmt.Errorf("decoder: OR op before separator")
			}
			row = append(row, op)
			orCount++
		case OpRow:
			if !inOr {
				return nil, fmt.Errorf("decoder: row ended before separator")
			}
			if g.andWidth == -1 {
				g.andWidth, g.orWidth = andCount, orCount
			} else if andCount != g.andWidth || orCount != g.orWidth {
				return nil, fmt.Errorf("decoder: ragged PLA row (%d/%d vs %d/%d)",
					andCount, orCount, g.andWidth, g.orWidth)
			}
			g.rows = append(g.rows, row)
			row, andCount, orCount, inOr = nil, 0, 0, false
		case OpEnd:
			if len(row) != 0 || inOr {
				return nil, fmt.Errorf("decoder: end op inside a row")
			}
			return g, nil
		default:
			return nil, fmt.Errorf("decoder: unknown silicon op %q", op)
		}
	}
	return nil, fmt.Errorf("decoder: op stream missing end marker")
}
