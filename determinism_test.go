// Determinism tests: the parallel fan-outs — Pass 1's per-column
// pipeline and Pass 3's speculative net routing (wave snapshots, commit
// in routing order, moat×strategy attempts raced to the lowest-index
// winner) — must be invisible in the output. Every spec in
// examples/chips is compiled serially (Parallelism=1) and on a wide
// pool, and the CIF mask set, sticks diagram, and statistics report
// (including the route conflict/retry counters) are required to be
// byte-identical — the property that lets the compile cache share one
// entry across pool sizes and lets a bug report reproduce exactly
// regardless of the machine.
package bristleblocks_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"bristleblocks"
)

// chipsSpecs parses every .bb description under examples/chips.
func chipsSpecs(t testing.TB) map[string]*bristleblocks.Spec {
	t.Helper()
	paths, err := filepath.Glob("examples/chips/*.bb")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no chip descriptions found: %v", err)
	}
	specs := make(map[string]*bristleblocks.Spec, len(paths))
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := bristleblocks.ParseSpec(string(src))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		specs[filepath.Base(p)] = spec
	}
	return specs
}

// renderOutputs compiles a spec and returns its three comparable outputs:
// the CIF mask set, the sticks diagram, and a statistics report.
func renderOutputs(t testing.TB, spec *bristleblocks.Spec, parallelism int) (string, string, string) {
	t.Helper()
	chip, err := bristleblocks.Compile(spec, &bristleblocks.Options{Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	var cif bytes.Buffer
	if err := bristleblocks.WriteCIF(&cif, chip); err != nil {
		t.Fatal(err)
	}
	// The report excludes Times (wall-clock is never deterministic) but
	// covers every derived statistic, so a pitch or placement divergence
	// shows up even if it happens not to move a mask byte.
	report := fmt.Sprintf("stats: %+v\ncolumns: %v\n", chip.Stats, chip.Columns())
	return cif.String(), chip.Sticks.Render(16), report
}

func TestParallelCompileDeterministic(t *testing.T) {
	for name, spec := range chipsSpecs(t) {
		t.Run(name, func(t *testing.T) {
			wantCIF, wantSticks, wantReport := renderOutputs(t, spec, 1)
			for _, par := range []int{0, 2, 4, 8, 2 * runtime.NumCPU()} {
				cif, sticks, report := renderOutputs(t, spec, par)
				if cif != wantCIF {
					t.Fatalf("parallelism %d: CIF differs from serial", par)
				}
				if sticks != wantSticks {
					t.Fatalf("parallelism %d: sticks differ from serial", par)
				}
				if report != wantReport {
					t.Fatalf("parallelism %d: report differs from serial:\n%s\nvs\n%s", par, report, wantReport)
				}
			}
		})
	}
}

// TestSerialCompileStable: the serial compiler itself is run-to-run
// byte-stable (no map-iteration order leaking into geometry) — the
// baseline the parallel comparison rests on.
func TestSerialCompileStable(t *testing.T) {
	for name, spec := range chipsSpecs(t) {
		t.Run(name, func(t *testing.T) {
			wantCIF, wantSticks, wantReport := renderOutputs(t, spec, 1)
			for i := 0; i < 3; i++ {
				cif, sticks, report := renderOutputs(t, spec, 1)
				if cif != wantCIF || sticks != wantSticks || report != wantReport {
					t.Fatalf("run %d: serial output unstable", i)
				}
			}
		})
	}
}
