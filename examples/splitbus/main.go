// Splitbus: the paper's bus segmentation. "The information needed by the
// compiler [includes] the number of busses running through each element,
// which busses are broken by the element, and which busses are stopped by
// the element." This example builds a chip whose lower bus is split into
// two independent segments and shows — by running microcode on the
// compiled chip — that the segments really are separate wires: a value
// driven on B1 never reaches B2.
package main

import (
	"fmt"
	"log"
	"strings"

	"bristleblocks"
)

const description = `
chip splitbus
lambda 250

microcode width 8
field OP 0 4

data width 4
bus A  0 -1     ; upper bus runs the whole core
bus B1 0  1     ; lower bus, west segment (elements 0..1)
bus B2 2 -1     ; lower bus, east segment (elements 2..)

element ka const     value=9 rd="OP=1"
element rw registers bus=B1 ld="OP=2" rd="OP=3"
element re registers bus=B2 ld="OP=2" rd="OP=5"
element x  xfer      x="OP=6"
`

func main() {
	spec, err := bristleblocks.ParseSpec(description)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	chip, err := bristleblocks.Compile(spec, nil)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Printf("compiled %s: %d columns, %d pads, DRC clean=%v\n\n",
		spec.Name, chip.Stats.Columns, chip.Stats.PadCount,
		len(bristleblocks.CheckDRC(chip)) == 0)
	fmt.Println(chip.Logical)

	// Both registers load on OP=2 — rw from segment B1, re from segment
	// B2. With nothing driving, each segment precharges to all-ones.
	machine, err := chip.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	machine.Run([]uint64{2})
	rw := chip.Model("rw").(interface{ Value() uint64 })
	re := chip.Model("re").(interface{ Value() uint64 })
	fmt.Printf("idle load:        rw=%X re=%X (both segments precharged high)\n",
		rw.Value(), re.Value())
	if rw.Value() != 0xF || re.Value() != 0xF {
		log.Fatal("precharge semantics broken")
	}

	// rw drives 6 on B1 (OP=3), then both registers load (OP=2). If the
	// segments shared a wire, re would have seen the 6; instead B2 was
	// freshly precharged and re reads all-ones again.
	machine2, err := chip.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	chip.Model("rw").(interface{ Set(uint64) }).Set(6)
	machine2.Run([]uint64{3, 2})
	fmt.Printf("after rw drove 6: rw=%X re=%X (B2 never saw B1's value)\n",
		rw.Value(), re.Value())
	if re.Value() != 0xF {
		log.Fatalf("bus segments leaked: re=%X", re.Value())
	}

	// The chip manual records the planned segments.
	fmt.Println("\nbus plan from the chip manual:")
	printSection(chip.Text, "Buses")
}

// printSection prints one numbered section of the Text representation.
func printSection(manual, heading string) {
	lines := strings.Split(manual, "\n")
	in := false
	for _, line := range lines {
		t := strings.TrimSpace(line)
		isHeading := t != "" && t[0] >= '1' && t[0] <= '9'
		if isHeading {
			in = strings.Contains(t, heading)
		}
		if in && t != "" {
			fmt.Println(line)
		}
	}
}
