// Customcell: the cell-designer's workflow. "Cells are stored in disk
// files and read in as needed, to allow for the use of common cell
// libraries and sharing of data" — this example authors a new leaf cell in
// the cell design language, verifies it the way the compiler would (DRC,
// declared-vs-extracted netlist), stretches it, re-verifies, and emits its
// CIF — all through the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"bristleblocks"
)

// A pulldown switch cell: one enhancement transistor between a grounded
// contact and an output contact, gate driven from the west edge.
// Coordinates are quarter-lambda quanta (4 = 1λ).
const cellSource = `
cell pulldown
size 0 0 40 96

# vertical diffusion strip with contact pads at both ends
box diff 16 8 24 88
box diff 12 8 28 24
box diff 12 72 28 88
box metal 12 8 28 24
box metal 12 72 28 88
box contact 16 12 24 20
box contact 16 76 24 84

# poly gate crossing the strip, reaching the west edge
box poly 0 44 32 52

label gnd 20 16 metal
label out 20 80 metal
label in 6 48 poly

bristle in  W 48 poly 8 control net=in guard="OP=1" phase=1
bristle gnd S 20 metal 16 ground net=gnd
bristle out N 20 metal 16 abut net=out

stretchy 64
stretchx 36
power 25

tx enh in gnd out
gate and out in
doc pulldown switch: pulls out low while in is high
endcell
`

func main() {
	cells, err := bristleblocks.ParseCDL(cellSource)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	c := cells[0]
	fmt.Printf("parsed cell %s: %dλ x %dλ, %d bristles\n",
		c.Name, c.Size.W()/4, c.Size.H()/4, len(c.Bristles))

	verify := func(stage string) {
		if vs := bristleblocks.CheckCellDRC(c); len(vs) != 0 {
			log.Fatalf("%s: DRC: %s", stage, vs[0])
		}
		ext, err := bristleblocks.ExtractCellNetlist(c)
		if err != nil {
			log.Fatalf("%s: extract: %v", stage, err)
		}
		if !ext.Equal(c.Netlist) {
			log.Fatalf("%s: extracted netlist differs:\n%s", stage, ext.Diff(c.Netlist))
		}
		fmt.Printf("%s: DRC clean, extraction matches (%d transistor)\n",
			stage, len(ext.Txs))
	}
	verify("as designed")

	// Stretch: 6λ taller through the declared line above the gate, 4λ
	// wider east of the strip — the compiler does this to every cell when
	// fitting the core's uniform pitch.
	if err := bristleblocks.StretchCell(c, 9, 4, 16, 6); err != nil {
		log.Fatalf("stretch: %v", err)
	}
	fmt.Printf("stretched to %dλ x %dλ\n", c.Size.W()/4, c.Size.H()/4)
	verify("after stretch")

	// The round trip back to CDL text preserves the cell.
	dump := bristleblocks.FormatCDL(c)
	again, err := bristleblocks.ParseCDL(dump)
	if err != nil {
		log.Fatalf("reparse: %v", err)
	}
	if !again[0].Netlist.Equal(c.Netlist) {
		log.Fatal("CDL round trip lost the netlist")
	}
	fmt.Println("CDL round trip preserves the cell")

	out := "pulldown.cif"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := bristleblocks.WriteCellCIF(f, c); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layout written to %s\n", out)
}
