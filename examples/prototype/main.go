// Prototype: the paper's conditional-assembly example. "When designing
// prototype chips, the internal state of a state machine may need to be
// routed to pads, but when production chips are produced, the area of the
// pad and wires may need to be reclaimed. The user may declare a global
// boolean variable PROTOTYPE, which, if TRUE, will add the connection
// points for the pads, but if FALSE will not."
package main

import (
	"fmt"
	"log"

	"bristleblocks"
)

const description = `
chip condchip
lambda 250

microcode width 8
field OP 0 4
field SEL 4 2

data width 4
bus A 0 -1
bus B 0 -1

global PROTOTYPE %v

# A debug port exposing internal state on pads — prototype chips only;
# production reclaims the pads and wires.
element dbg ioport    if=PROTOTYPE io="OP=7" class=output
element r   registers count=2 ld="OP=2 & SEL={i}" rd="OP=3 & SEL={i}"
element k1  const     value=1 rd="OP=1"
element alu alu       lda="OP=4" ldb="OP=5" rd="OP=6"
`

func build(prototype bool) *bristleblocks.Chip {
	spec, err := bristleblocks.ParseSpec(fmt.Sprintf(description, prototype))
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	chip, err := bristleblocks.Compile(spec, nil)
	if err != nil {
		log.Fatalf("compile (PROTOTYPE=%v): %v", prototype, err)
	}
	return chip
}

func main() {
	proto := build(true)
	prod := build(false)

	fmt.Println("Conditional assembly: the same description, two mask sets.")
	fmt.Printf("%-22s %12s %12s\n", "", "PROTOTYPE", "production")
	fmt.Printf("%-22s %12d %12d\n", "core columns", proto.Stats.Columns, prod.Stats.Columns)
	fmt.Printf("%-22s %12d %12d\n", "pads", proto.Stats.PadCount, prod.Stats.PadCount)
	fmt.Printf("%-22s %12d %12d\n", "transistors", proto.Stats.Transistors, prod.Stats.Transistors)
	fmt.Printf("%-22s %12.0f %12.0f\n", "chip area (sq lambda)",
		bristleblocks.AreaLambda(proto), bristleblocks.AreaLambda(prod))
	saved := bristleblocks.AreaLambda(proto) - bristleblocks.AreaLambda(prod)
	fmt.Printf("\nproduction reclaims %.0f square lambda (%.1f%%) of prototype area\n",
		saved, 100*saved/bristleblocks.AreaLambda(proto))

	if prod.Stats.PadCount >= proto.Stats.PadCount {
		log.Fatal("production chip should have fewer pads")
	}
	if len(bristleblocks.CheckDRC(proto)) != 0 || len(bristleblocks.CheckDRC(prod)) != 0 {
		log.Fatal("DRC violations")
	}
	fmt.Println("both variants pass DRC")
}
