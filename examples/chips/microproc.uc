; Count to four on the microproc chip. One word is one two-phase cycle;
; a value must be on a bus in the same word that latches it.
;
; OP=6 is a one-word accumulate: the ALU drives a+b onto bus A, register
; rf0 loads the sum, and the ALU re-latches it as the next operand a.

OP=5 EN=1       ; constant 1 on bus B, bridged to A; ALU latches b=1

.repeat 4
OP=6 SEL=0      ; ALU drives a+b; rf0 loads it; a latches the new sum
.end

OP=3 SEL=0      ; rf0 drives the final count (4) onto bus A
