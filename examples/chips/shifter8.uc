; Shift the input pads right three times and present the result.
; Run with: bristlec -pads io=0xC8 -run shifter8.uc shifter8.bb
; (idle input pads read all-ones into the wired-AND bus, so set them)

IO=1 LD=1             ; pads -> bus A; register latches the input
.repeat 3
RD=1 SL=1             ; register drives bus A; shifter latches
SR=1 X=1 LD=1         ; shifted word on bus B, bridged to A; register loads
.end
RD=1 IO=1             ; register drives bus A; the I/O port connects.
                      ; Note the wired-AND: the input pads still hold 0xC8,
                      ; so the bus settles at 0x19 & 0xC8 = 0x08 — drive the
                      ; pads to all-ones first when reading out (see the
                      ; microproc example).
