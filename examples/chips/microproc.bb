# A microcoded 4-bit processor slice with vertical microcode: a single OP
# field names the operation and the decoder PLA derives every control
# line from it. The guards use the whole decode language — OR
# alternatives, field equality, negation — and leave real work for the
# Pass 2 minimizer: the bus bridge runs on every op between HALT (OP=0)
# and NOP (OP=15), a guard whose sum-of-products form is twelve
# overlapping terms before minimization.
chip microproc
lambda 250

microcode width 7
field OP  0 4    ; operation code (0 = halt, 15 = nop)
field SEL 4 2    ; register select
field EN  6 1    ; execute enable for the constant source

data width 4
bus A 0 -1
bus B 0 -1

# op 1: connect the I/O port          op 4, 6: latch ALU operand a
# op 2, 6: load selected register     op 5: latch ALU operand b
# op 3: drive selected register       op 6: drive ALU sum
# op 5 & EN: drive constant 1 (bus B) op != 0, 15: bridge the buses
element io  ioport    io="OP=1" class=io
element rf  registers count=3 ld="(OP=2 | OP=6) & SEL={i}" rd="OP=3 & SEL={i}"
element alu alu       lda="OP=4 | OP=6" ldb="OP=5" rd="OP=6" op=add
element k1  const     value=1 rd="OP=5 & EN=1" bus=B
element x   xfer      x="!(OP=0) & !(OP=15)"
