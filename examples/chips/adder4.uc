; Count on the adder4 chip: acc0 starts at 1, then four increments.
; One microcode word is one two-phase clock cycle; a value must be on the
; bus in the same word that latches it.

K=1 LD=1 SEL=0         ; constant 1 on bus A; acc0 loads it
K=1 X=1 LB=1           ; constant 1 bridged to bus B; ALU latches b=1

.repeat 4
RD=1 SEL=0 LA=1        ; acc0 drives bus A; ALU latches a
AR=1 LD=1 SEL=0        ; ALU drives a+1; acc0 loads it
.end
