// Microproc: an 8-bit microprocessor datapath — register banks on both
// buses, an adder, a shifter, a constant source, a bus bridge, and an I/O
// port — compiled to silicon and then *programmed*: the example assembles
// a microcode program that computes Fibonacci numbers and runs it on the
// chip's Simulation representation, exactly the workflow the paper's
// introduction imagines ("complete mask layouts and simulations for each
// of his or her experimental configurations with almost no effort").
package main

import (
	"fmt"
	"log"

	"bristleblocks"
)

// Horizontal microcode: one enable bit per control.
const description = `
chip microproc
lambda 250

microcode width 12
field RALD  0 1   ; register A bank load (from bus A)
field RARD  1 1   ; register A bank drive
field RBLD  2 1   ; register B bank load (from bus B)
field RBRD  3 1   ; register B bank drive
field ALA   4 1   ; ALU latch operand a (bus A)
field ALB   5 1   ; ALU latch operand b (bus B)
field ARD   6 1   ; ALU drive result (bus A)
field XFR   7 1   ; bridge bus A <-> bus B
field IO    8 1   ; I/O port connect
field KRD   9 1   ; constant drive (bus A)
field SHLD 10 1   ; shifter load (bus A)
field SHRD 11 1   ; shifter drive shifted value (bus B)

data width 8
bus A 0 -1
bus B 0 -1

element io ioport    io="IO" class=io
element ra registers ld="RALD" rd="RARD"
element rb registers bus=B ld="RBLD" rd="RBRD"
element alu alu      lda="ALA" ldb="ALB" rd="ARD" op=add
element sh shifter   ld="SHLD" rd="SHRD"
element x  xfer      x="XFR"
element k1 const     value=1 rd="KRD"
`

// Microcode bit positions (match the fields above).
const (
	mRALD = 1 << iota
	mRARD
	mRBLD
	mRBRD
	mALA
	mALB
	mARD
	mXFR
	mIO
	mKRD
	mSHLD
	mSHRD
)

func main() {
	spec, err := bristleblocks.ParseSpec(description)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	chip, err := bristleblocks.Compile(spec, nil)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Printf("compiled %s: %d transistors, %d pads, %.0f square lambda, DRC clean=%v\n\n",
		spec.Name, chip.Stats.Transistors, chip.Stats.PadCount,
		bristleblocks.AreaLambda(chip), len(bristleblocks.CheckDRC(chip)) == 0)

	// ---- Assemble the Fibonacci program.
	//
	// ra holds a, rb holds b. One iteration:
	//   1. ra drives bus A into the ALU's a latch; rb drives bus B into
	//      the b latch (both buses in one cycle).
	//   2. rb drives bus B; the bridge copies it to bus A; ra loads b.
	//   3. the ALU drives a+b on bus A; the bridge copies to bus B; rb
	//      loads the sum.
	var program []uint64
	// init: ra <- 1 (constant on bus A), rb <- 1 (constant bridged to B).
	program = append(program,
		mKRD|mRALD,
		mKRD|mXFR|mRBLD,
	)
	const iterations = 10
	for i := 0; i < iterations; i++ {
		program = append(program,
			mRARD|mALA|mRBRD|mALB, // latch operands
			mRBRD|mXFR|mRALD,      // a <- b
			mARD|mXFR|mRBLD,       // b <- a+b
		)
	}
	// Read the result out through the I/O port while ra drives.
	program = append(program, mRARD|mIO)

	machine, err := chip.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	// Idle input pads read high (they must not pull the precharged bus
	// during the read-out: wired-AND with all-ones is the identity).
	chip.Model("io").(interface{ SetPads(uint64) }).SetPads(0xFF)
	machine.Run(program)

	ra := chip.Model("ra").(interface{ Value() uint64 })
	rb := chip.Model("rb").(interface{ Value() uint64 })
	io := chip.Model("io").(interface{ Pads() uint64 })
	fmt.Printf("after %d iterations: ra=%d rb=%d (pads read %d)\n",
		iterations, ra.Value(), rb.Value(), io.Pads())

	// fib: 1 1 2 3 5 8 13 21 34 55 89 144: after 10 iterations ra=fib(11)=89.
	if ra.Value() != 89 || rb.Value() != 144 {
		log.Fatalf("Fibonacci mismatch: want ra=89 rb=144")
	}
	if io.Pads() != 89 {
		log.Fatalf("I/O port read %d, want 89", io.Pads())
	}
	fmt.Println("Fibonacci verified: the compiled chip computes fib(11) = 89")

	fmt.Println("\nText representation (user's manual):")
	fmt.Println(chip.Text)
}
