// Representations: emit all seven representations of one chip to files —
// "the representations span the entire range from the physical to the
// conceptual aspects of the chip". Layout (CIF), Sticks, Transistors,
// Logic, Text, Simulation (a trace), and Block.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bristleblocks"
)

const description = `
chip repdemo
lambda 250

microcode width 8
field OP 0 4
field SEL 4 2

data width 4
bus A 0 -1
bus B 0 -1

element io  ioport    io="OP=1" class=io
element r   registers count=2 ld="(OP=1 | OP=2) & SEL={i}" rd="OP=3 & SEL={i}"
element alu alu       lda="OP=4" ldb="OP=5" rd="OP=6"
`

func main() {
	outDir := "representations.out"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	spec, err := bristleblocks.ParseSpec(description)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := bristleblocks.Compile(spec, nil)
	if err != nil {
		log.Fatal(err)
	}

	write := func(name, content string) {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s %6d bytes\n", name, len(content))
	}

	fmt.Printf("writing the seven representations of %s to %s/\n", spec.Name, outDir)

	// 1. Layout: the CIF mask set.
	f, err := os.Create(filepath.Join(outDir, "layout.cif"))
	if err != nil {
		log.Fatal(err)
	}
	if err := bristleblocks.WriteCIF(f, chip); err != nil {
		log.Fatal(err)
	}
	fi, _ := f.Stat()
	f.Close()
	fmt.Printf("  %-20s %6d bytes\n", "layout.cif", fi.Size())

	// 2. Sticks.
	write("sticks.txt", chip.Sticks.Render(16))

	// 3. Transistors.
	write("transistors.txt", chip.Netlist.String()+"\n")

	// 4. Logic.
	write("logic.txt", chip.Logic.Render())

	// 5. Text (the user's manual).
	write("manual.txt", chip.Text)

	// 6. Simulation: run a short program and save the trace.
	machine, err := chip.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	io := chip.Model("io").(interface{ SetPads(uint64) })
	io.SetPads(0x9)
	op := func(o, sel uint64) uint64 { return o | sel<<4 }
	trace := machine.Run([]uint64{
		op(1, 0), // pads -> bus A; r0 loads
		op(3, 0), // r0 drives bus A
		op(4, 0), // alu latches a
		op(6, 0), // alu drives a+0
	})
	write("simulation.txt", bristleblocks.FormatTrace(trace, []string{"A", "B"}))

	// 7. Block.
	write("block.txt", chip.Block+"\n"+chip.Logical)

	// Bonus: a PNG check plot of the mask set (the era's plotter output).
	pf, err := os.Create(filepath.Join(outDir, "layout.png"))
	if err != nil {
		log.Fatal(err)
	}
	if err := bristleblocks.WritePlot(pf, chip, 0); err != nil {
		log.Fatal(err)
	}
	pi, _ := pf.Stat()
	pf.Close()
	fmt.Printf("  %-20s %6d bytes\n", "layout.png", pi.Size())

	fmt.Println("done")
}
