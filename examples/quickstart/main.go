// Quickstart: compile a small 4-bit chip from a one-page description,
// print its statistics and block diagram, and emit the CIF mask set.
package main

import (
	"fmt"
	"log"
	"os"

	"bristleblocks"
)

const description = `
chip quickstart
lambda 250

microcode width 8
field OP 0 4
field SEL 4 2

data width 4
bus A 0 -1
bus B 0 -1

element io  ioport    io="OP=1" class=io
element r   registers count=2 ld="OP=2 & SEL={i}" rd="OP=3 & SEL={i}"
element alu alu       lda="OP=4" ldb="OP=5" rd="OP=6" op=add
`

func main() {
	spec, err := bristleblocks.ParseSpec(description)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	chip, err := bristleblocks.Compile(spec, nil)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}

	fmt.Printf("compiled %s in %v (core %v, control %v, pads %v)\n",
		spec.Name, chip.Times.Total, chip.Times.Core, chip.Times.Control, chip.Times.Pads)
	fmt.Printf("  core columns: %d   pitch: %.1fλ\n", chip.Stats.Columns, float64(chip.Stats.Pitch)/4)
	fmt.Printf("  transistors:  %d   pads: %d   PLA terms: %d\n",
		chip.Stats.Transistors, chip.Stats.PadCount, chip.Stats.PLATerms)
	fmt.Printf("  chip area:    %.0f square lambda\n\n", bristleblocks.AreaLambda(chip))

	fmt.Println("Block diagram (physical format):")
	fmt.Println(chip.Block)
	fmt.Println("Logical format:")
	fmt.Println(chip.Logical)

	if vs := bristleblocks.CheckDRC(chip); len(vs) > 0 {
		log.Fatalf("DRC violations: %v", vs)
	}
	fmt.Println("DRC: clean")

	f, err := os.Create("quickstart.cif")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := bristleblocks.WriteCIF(f, chip); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mask set written to quickstart.cif")
}
