; Waveform scenarios for the shifter8 example: the three-shift program
; from shifter8.uc with its expected waveforms — including the wired-AND
; readout gotcha the .uc file warns about — plus shift patterns down to
; zero and an alternating-bit pattern.
chip shifter8

; 0xC8 shifted right three times is 0x19. Each shift is two cycles:
; the register drives bus A and the shifter latches; the shifter drives
; the word>>1 on bus B, the bridge carries it to A, the register loads.
scenario shift-right-3
pads io=0xC8
step IO=1 LD=1   | A=0xC8 phi1.io.io=1 phi1.r.ld=1
step RD=1 SL=1   | A=0xC8 phi1.sh.ld=1
step SR=1 X=1 LD=1 | A=0x64 B=0x64 phi1.sh.rd=1 phi1.x.x=1
step RD=1 SL=1   | A=0x64
step SR=1 X=1 LD=1 | A=0x32 B=0x32
step RD=1 SL=1   | A=0x32
step SR=1 X=1 LD=1 | A=0x19 B=0x19
; Readout with the input pads still holding 0xC8: the wired-AND bus
; settles at 0x19 & 0xC8 = 0x08 — the gotcha shifter8.uc documents.
step RD=1 IO=1   | A=0x08
expect r=0x19 sh=0x32 io.pads=0x08

; The top row's shift chain is terminated: zeros shift in, so a single
; set bit shifts out to nothing.
scenario shift-to-zero
set r=0x01
step RD=1 SL=1     | A=0x01
step SR=1 X=1 LD=1 | A=0 B=0
expect r=0 sh=1

; Alternating bits: 0xAA >> 1 = 0x55. The shifter drives bus B alone
; (no bridge), so bus A stays precharged all-ones.
scenario alternate
set sh=0xAA
step SR=1 LD=0 | A=0xFF B=0b01010101
step SR=1 X=1 LD=1 | A=0x55 B=0x55
expect r=0x55
