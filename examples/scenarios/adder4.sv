; Waveform scenarios for the adder4 example: the counting program from
; adder4.uc with its expected bus waveforms, plus carry-chain vectors the
; hand-written program never exercises. One step is one two-phase clock
; cycle; bus expectations check the φ1 snapshot (undriven precharged
; buses read all-ones), phi1./phi2. expectations the decoded control
; levels, and expect lines the element state after the run.
chip adder4

; The adder4.uc counting program, graded: acc0 starts at 1 and the
; ALU increments it four times.
scenario count
step K=1 LD=1 SEL=0 | A=1 B=0xF phi1.acc0.ld=1 phi1.acc1.ld=0 phi1.k1.rd=1
step K=1 X=1 LB=1   | A=1 B=1   phi1.alu.ldb=1 phi1.x.x=1
step RD=1 SEL=0 LA=1 | A=1 phi1.acc0.rd=1 phi1.alu.lda=1
step AR=1 LD=1 SEL=0 | A=2 phi1.alu.rd=1
step RD=1 SEL=0 LA=1 | A=2
step AR=1 LD=1 SEL=0 | A=3
step RD=1 SEL=0 LA=1 | A=3
step AR=1 LD=1 SEL=0 | A=4
step RD=1 SEL=0 LA=1 | A=4
step AR=1 LD=1 SEL=0 | A=5
expect acc0=5 acc1=0

; Carry propagation through the low three bits: 7 + 1 = 8, stored in the
; second accumulator while the first keeps its operand.
scenario carry-chain
set acc0=0x7
step RD=1 SEL=0 LA=1 | A=0x7 B=0xF
step K=1 X=1 LB=1    | A=1 B=1
step AR=1 LD=1 SEL=1 | A=0x8 phi1.acc1.ld=1 phi1.acc0.ld=0
expect acc1=0x8 acc0=0x7

; Full-width carry out: 0xF + 1 wraps to 0 on the 4-bit datapath.
scenario carry-wrap
set acc0=0xF
step RD=1 SEL=0 LA=1 | A=0xF
step K=1 X=1 LB=1    | A=1 B=1
step AR=1 LD=1 SEL=0 | A=0b0000
expect acc0=0

; The I/O port drives the bus from its input pads and samples the bus
; onto its output pads whenever IO fires.
scenario io-load
pads io=0x9
step IO=1 LD=1 SEL=0 | A=0x9 phi1.io.io=1
step RD=1 SEL=0 IO=1 | A=0x9
expect acc0=0x9 io.pads=0x9
