; Waveform scenarios for the microproc example: the counting microcode
; sequence from microproc.uc, a register-file sweep, the conditional
; constant enable, and the halt/nop idle states. The chip uses vertical
; microcode — a single OP field the decoder PLA expands — so these
; scenarios grade the minimized PLA's decode directly.
chip microproc

; The microproc.uc program: latch b=1, then four one-word accumulates
; (OP=6 drives a+b, loads rf0, and re-latches operand a in one cycle).
scenario count-to-four
step OP=5 EN=1  | A=1 B=1 phi1.k1.rd=1 phi1.alu.ldb=1 phi1.x.x=1
step OP=6 SEL=0 | A=1 phi1.alu.rd=1 phi1.rf0.ld=1 phi1.alu.lda=1
step OP=6 SEL=0 | A=2
step OP=6 SEL=0 | A=3
step OP=6 SEL=0 | A=4
step OP=3 SEL=0 | A=4 B=4 phi1.rf0.rd=1
expect rf0=4

; Read back each register of the file; OP=2 with nothing driving the
; bus latches the precharged all-ones word.
scenario register-file
set rf0=1
set rf1=2
set rf2=4
step OP=3 SEL=0 | A=1 B=1 phi1.rf0.rd=1 phi1.rf1.rd=0 phi1.rf2.rd=0
step OP=3 SEL=1 | A=2 B=2
step OP=3 SEL=2 | A=4 B=4
step OP=2 SEL=2 | A=0xF phi1.rf2.ld=1
expect rf0=1 rf1=2 rf2=0xF

; The constant source is gated on EN: OP=5 alone leaves both buses
; precharged; OP=5 EN=1 puts 1 on bus B and the bridge carries it to A.
scenario enable-gate
step OP=5 EN=0 | A=0xF B=0xF phi1.k1.rd=0 phi1.alu.ldb=1
step OP=5 EN=1 | A=1 B=1 phi1.k1.rd=1

; HALT (OP=0) and NOP (OP=15) are the only ops with the bus bridge off;
; every other op joins the buses. Nothing drives, so everything reads
; the precharged all-ones.
scenario halt-nop-idle
step OP=0  | A=0xF B=0xF phi1.x.x=0
step OP=15 | A=0xF B=0xF phi1.x.x=0
step OP=7  | A=0xF B=0xF phi1.x.x=1
