package bristleblocks_test

import (
	"bytes"
	"strings"
	"testing"

	"bristleblocks"
	"bristleblocks/internal/cell"
	"bristleblocks/internal/geom"
)

// tieCell has one metal strip covering x ∈ [0,16] quanta and stretch
// lines at 8 and 24 on both axes: a stretch routed to line 8 widens the
// strip, one routed to 24 only moves the far edge of the cell. That
// asymmetry makes the chosen line observable from the geometry.
const tieCell = `
cell tie
size 0 0 32 32
box metal 0 0 16 32
label m 8 16 metal
stretchx 8 24
stretchy 8 24
endcell
`

func parseTieCell(t *testing.T) *bristleblocks.Cell {
	t.Helper()
	cells, err := bristleblocks.ParseCDL(tieCell)
	if err != nil {
		t.Fatal(err)
	}
	return cells[0]
}

// TestStretchCellTieBreak: atX=4λ (16 quanta) is exactly between the
// lines at 8 and 24; the nearest-line search must deterministically keep
// the first declared line, so the strip widens.
func TestStretchCellTieBreak(t *testing.T) {
	c := parseTieCell(t)
	if err := bristleblocks.StretchCell(c, 4, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Layout.Boxes[0].R.MaxX; got != 20 {
		t.Errorf("tied stretch went to the far line: box MaxX = %d, want 20", got)
	}
	if got := c.Size.MaxX; got != 36 {
		t.Errorf("size MaxX = %d, want 36", got)
	}
}

// TestStretchCellNearestLine: a point clearly nearer the far line must
// select it and leave the strip untouched.
func TestStretchCellNearestLine(t *testing.T) {
	c := parseTieCell(t)
	if err := bristleblocks.StretchCell(c, 7, 1, 0, 0); err != nil { // 28 quanta: nearer 24
		t.Fatal(err)
	}
	if got := c.Layout.Boxes[0].R.MaxX; got != 16 {
		t.Errorf("stretch at far line widened the strip: box MaxX = %d, want 16", got)
	}
	if got := c.Size.MaxX; got != 36 {
		t.Errorf("size MaxX = %d, want 36", got)
	}
}

// TestStretchCellZeroDelta: a zero delta skips its axis entirely — even
// on a cell with no stretch lines at all it must not error or move
// anything.
func TestStretchCellZeroDelta(t *testing.T) {
	c := parseTieCell(t)
	before := c.Size
	if err := bristleblocks.StretchCell(c, 4, 0, 4, 0); err != nil {
		t.Fatalf("all-zero stretch errored: %v", err)
	}
	if c.Size != before {
		t.Errorf("all-zero stretch moved the abutment box: %v -> %v", before, c.Size)
	}

	rigid, err := bristleblocks.ParseCDL("cell r\nsize 0 0 16 16\nbox metal 0 0 16 16\nlabel m 8 8 metal\nendcell\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := bristleblocks.StretchCell(rigid[0], 0, 0, 0, 0); err != nil {
		t.Errorf("zero-delta stretch of a rigid cell errored: %v", err)
	}
}

// TestStretchCellAxisErrors: a nonzero delta on an axis without stretch
// lines is an error naming that axis, and the cell is left untouched when
// the failing axis comes first.
func TestStretchCellAxisErrors(t *testing.T) {
	cells, err := bristleblocks.ParseCDL("cell yonly\nsize 0 0 16 32\nbox metal 0 0 16 32\nlabel m 8 8 metal\nstretchy 16\nendcell\n")
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	err = bristleblocks.StretchCell(c, 2, 2, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "horizontal") {
		t.Errorf("x stretch of y-only cell: err = %v, want horizontal-lines error", err)
	}
	if c.Size.MaxX != 16 {
		t.Errorf("failed stretch moved the cell: %v", c.Size)
	}
	// The y axis still works after the x failure path.
	if err := bristleblocks.StretchCell(c, 0, 0, 4, 2); err != nil {
		t.Errorf("y stretch after x error: %v", err)
	}
	if c.Size.MaxY != 40 {
		t.Errorf("size MaxY = %d, want 40", c.Size.MaxY)
	}

	cells, err = bristleblocks.ParseCDL("cell xonly\nsize 0 0 32 16\nbox metal 0 0 32 16\nlabel m 8 8 metal\nstretchx 16\nendcell\n")
	if err != nil {
		t.Fatal(err)
	}
	err = bristleblocks.StretchCell(cells[0], 0, 0, 2, 2)
	if err == nil || !strings.Contains(err.Error(), "vertical") {
		t.Errorf("y stretch of x-only cell: err = %v, want vertical-lines error", err)
	}
}

// TestWriteCellCIFLambdaOverride: a cell carrying its own physical lambda
// must be written at that scale, mirroring WriteCIF's handling of
// Spec.LambdaCentimicrons.
func TestWriteCellCIFLambdaOverride(t *testing.T) {
	base := "cell c\nsize 0 0 16 16\nbox metal 0 0 16 16\nlabel m 8 8 metal\n"
	def, err := bristleblocks.ParseCDL(base + "endcell\n")
	if err != nil {
		t.Fatal(err)
	}
	fine, err := bristleblocks.ParseCDL(base + "lambda 100\nendcell\n")
	if err != nil {
		t.Fatal(err)
	}
	if fine[0].LambdaCentimicrons != 100 {
		t.Fatalf("lambda directive not parsed: %+v", fine[0].LambdaCentimicrons)
	}
	var defOut, fineOut bytes.Buffer
	if err := bristleblocks.WriteCellCIF(&defOut, def[0]); err != nil {
		t.Fatal(err)
	}
	if err := bristleblocks.WriteCellCIF(&fineOut, fine[0]); err != nil {
		t.Fatal(err)
	}
	if defOut.String() == fineOut.String() {
		t.Error("lambda override did not change the CIF scale")
	}
	// The override survives the CDL round trip, so library files keep
	// their process.
	reparsed, err := bristleblocks.ParseCDL(bristleblocks.FormatCDL(fine[0]))
	if err != nil {
		t.Fatal(err)
	}
	if reparsed[0].LambdaCentimicrons != 100 {
		t.Error("lambda directive lost in FormatCDL round trip")
	}
}

// TestStretchCellDegenerateExtent: a zero-width cell (impossible to enter
// via CDL, which rejects empty sizes, but constructible through the API)
// must be refused with an error instead of producing degenerate geometry.
func TestStretchCellDegenerateExtent(t *testing.T) {
	thin := cell.New("thin", geom.R(0, 0, 0, 32))
	thin.StretchX = []geom.Coord{0}
	err := bristleblocks.StretchCell(thin, 0, 1, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "degenerate") {
		t.Errorf("x stretch of zero-width cell: err = %v, want degenerate-extent error", err)
	}
	flat := cell.New("flat", geom.R(0, 0, 32, 0))
	flat.StretchY = []geom.Coord{0}
	err = bristleblocks.StretchCell(flat, 0, 0, 0, 1)
	if err == nil || !strings.Contains(err.Error(), "degenerate") {
		t.Errorf("y stretch of zero-height cell: err = %v, want degenerate-extent error", err)
	}
	// A zero delta still skips the axis entirely, degenerate or not.
	if err := bristleblocks.StretchCell(thin, 0, 0, 0, 0); err != nil {
		t.Errorf("all-zero stretch of degenerate cell errored: %v", err)
	}
}

// TestStretchCellSingleLine: with exactly one declared stretch line,
// every atX routes to it — including points far outside the cell — and
// the geometry on each side of the line moves as a unit.
func TestStretchCellSingleLine(t *testing.T) {
	src := "cell one\nsize 0 0 32 16\nbox metal 0 0 12 16\nbox metal 20 0 32 16\nlabel m 8 8 metal\nlabel n 24 8 metal\nstretchx 16\nendcell\n"
	for _, atX := range []int{-100, 0, 4, 100} {
		cells, err := bristleblocks.ParseCDL(src)
		if err != nil {
			t.Fatal(err)
		}
		c := cells[0]
		if err := bristleblocks.StretchCell(c, atX, 2, 0, 0); err != nil {
			t.Fatalf("atX=%d: %v", atX, err)
		}
		if got := c.Size.MaxX; got != 40 {
			t.Errorf("atX=%d: size MaxX = %d, want 40", atX, got)
		}
		// The west strip stays put; the east strip moves by the full 2λ.
		if got := c.Layout.Boxes[0].R.MaxX; got != 12 {
			t.Errorf("atX=%d: west strip MaxX = %d, want 12", atX, got)
		}
		if got := c.Layout.Boxes[1].R.MinX; got != 28 {
			t.Errorf("atX=%d: east strip MinX = %d, want 28", atX, got)
		}
	}
}

// TestStretchCellCollapseGuard: a negative delta larger than the cell
// itself must error out instead of emitting inside-out geometry.
func TestStretchCellCollapseGuard(t *testing.T) {
	c := parseTieCell(t) // 32 x 32 quanta = 8λ x 8λ
	err := bristleblocks.StretchCell(c, 4, -8, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "collapse") {
		t.Errorf("x collapse: err = %v, want collapse error", err)
	}
	err = bristleblocks.StretchCell(c, 0, 0, 4, -10)
	if err == nil || !strings.Contains(err.Error(), "collapse") {
		t.Errorf("y collapse: err = %v, want collapse error", err)
	}
	if c.Size != (geom.Rect{MinX: 0, MinY: 0, MaxX: 32, MaxY: 32}) {
		t.Errorf("refused stretches still moved the cell: %v", c.Size)
	}
}
