module bristleblocks

go 1.22
