// Package bristleblocks is a from-scratch reproduction of the Bristle
// Blocks silicon compiler (Dave Johannsen, DAC 1979): a three-pass compiler
// that turns a single-page chip description into a complete nMOS mask set
// plus sticks, transistor, logic, text, simulation, and block-diagram
// representations of the same chip.
//
// Quick start:
//
//	spec, err := bristleblocks.ParseSpec(descriptionText)
//	chip, err := bristleblocks.Compile(spec, nil)
//	err = bristleblocks.WriteCIF(w, chip)
//	machine, err := chip.NewSim()
//	machine.Run(microcode)
//
// The description language, cell library, and experiment harness are
// documented in README.md and DESIGN.md.
package bristleblocks

import (
	"context"
	"fmt"
	"io"

	"bristleblocks/internal/cdl"
	cellpkg "bristleblocks/internal/cell"
	"bristleblocks/internal/cif"
	"bristleblocks/internal/core"
	"bristleblocks/internal/desc"
	"bristleblocks/internal/drc"
	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/mask"
	"bristleblocks/internal/plot"
	simpkg "bristleblocks/internal/sim"
	"bristleblocks/internal/stretch"
	"bristleblocks/internal/transistor"
	"bristleblocks/internal/ucode"
)

// Spec is a chip specification: the microcode format, data width, bus
// list, core elements, and conditional-assembly globals.
type Spec = core.Spec

// ElementSpec names one core element and its parameters.
type ElementSpec = core.ElementSpec

// Options are the compiler switches (ablations and partial runs).
type Options = core.Options

// Chip is a compiled chip with all seven representations.
type Chip = core.Chip

// Compile runs the three-pass silicon compiler.
func Compile(spec *Spec, opts *Options) (*Chip, error) {
	return core.Compile(spec, opts)
}

// CompileCtx runs the three-pass silicon compiler under a context: a
// canceled or timed-out context stops the compilation between passes and
// inside Pass 1's per-column loop (the serving path in internal/server
// relies on this to reclaim workers from abandoned requests).
func CompileCtx(ctx context.Context, spec *Spec, opts *Options) (*Chip, error) {
	return core.CompileCtx(ctx, spec, opts)
}

// ParseSpec reads the single-page chip description language.
func ParseSpec(src string) (*Spec, error) {
	return desc.Parse(src)
}

// FormatSpec renders a Spec back to description text.
func FormatSpec(spec *Spec) string {
	return desc.Format(spec)
}

// WriteCIF emits the chip's Layout representation as Caltech Intermediate
// Form, using the spec's physical lambda.
func WriteCIF(w io.Writer, chip *Chip) error {
	lambda := chip.Spec.LambdaCentimicrons
	if lambda <= 0 {
		lambda = cif.DefaultLambdaCentimicrons
	}
	return cif.Write(w, chip.Mask, lambda)
}

// CheckDRC verifies the compiled layout against the Mead & Conway lambda
// rules and returns human-readable violations (empty = clean).
func CheckDRC(chip *Chip) []string {
	return checkMaskDRC(chip.Mask)
}

// checkMaskDRC runs the lambda-rule checker over one mask cell and formats
// the violations (shared by the chip- and cell-level entry points).
func checkMaskDRC(m *mask.Cell) []string {
	vs := drc.Check(m, layer.MeadConway(), &drc.Options{MaxViolations: 50})
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// ExtractNetlist recovers the transistor netlist from the compiled mask
// geometry (the Transistor representation derived independently from the
// Layout representation).
func ExtractNetlist(chip *Chip) (*transistor.Netlist, error) {
	return transistor.Extract(chip.Mask)
}

// Trace is one simulated clock cycle's record.
type Trace = simpkg.CycleState

// FormatTrace renders a simulation trace as a table.
func FormatTrace(trace []Trace, buses []string) string {
	return simpkg.FormatTrace(trace, buses)
}

// WritePlot renders the chip's layout as a PNG check plot
// (pixelsPerLambda <= 0 selects the default scale).
func WritePlot(w io.Writer, chip *Chip, pixelsPerLambda int) error {
	return plot.PNG(w, chip.Mask, &plot.Options{PixelsPerLambda: pixelsPerLambda})
}

// WriteCellPlot renders one cell's layout as a PNG check plot.
func WriteCellPlot(w io.Writer, c *Cell, pixelsPerLambda int) error {
	return plot.PNG(w, c.Layout, &plot.Options{PixelsPerLambda: pixelsPerLambda})
}

// AssembleMicrocode packs symbolic microcode ("OP=2 SEL=1" per line, with
// nop and .repeat/.end blocks) into words for the spec's instruction
// format.
func AssembleMicrocode(spec *Spec, src string) ([]uint64, error) {
	return ucode.Assemble(spec.Microcode, src)
}

// DisassembleMicrocode renders one microcode word as field assignments.
func DisassembleMicrocode(spec *Spec, word uint64) string {
	return ucode.Disassemble(spec.Microcode, word)
}

// AreaLambda returns the chip's bounding area in square lambda.
func AreaLambda(chip *Chip) float64 {
	a := chip.Stats.ChipBounds.Area()
	return float64(a) / float64(geom.Lambda*geom.Lambda)
}

// ---- Cell-level workflow: "cells are stored in disk files and read in as
// needed, to allow for the use of common cell libraries".

// Cell is one procedural or library cell with its bristles, stretch lines,
// and all seven representations.
type Cell = cellpkg.Cell

// ParseCDL reads cell definitions in the cell design language.
func ParseCDL(src string) ([]*Cell, error) {
	return cdl.Parse(src)
}

// FormatCDL renders a cell back to cell-design-language text.
func FormatCDL(c *Cell) string {
	return cdl.Format(c)
}

// StretchCell inserts dx lambda of width at the cell's declared x stretch
// line nearest atX, and dy lambda of height at the y stretch line nearest
// atY (the paper's "painless operation": geometry, wires, bristles and
// sticks all follow). A zero delta skips that axis; it is an error to
// stretch an axis for which the cell declares no stretch lines, to
// stretch a cell with a degenerate (empty) extent, or to shrink a cell
// to zero or negative size.
func StretchCell(c *Cell, atX, dx, atY, dy int) error {
	if (dx != 0 || dy != 0) && c.Size.Empty() {
		return fmt.Errorf("cell %s has a degenerate extent %v; nothing to stretch", c.Name, c.Size)
	}
	if d := geom.Coord(dx) * geom.Lambda; dx < 0 && c.Size.W()+d <= 0 {
		return fmt.Errorf("stretching cell %s by %dλ in x would collapse its %d-quantum width", c.Name, dx, c.Size.W())
	}
	if d := geom.Coord(dy) * geom.Lambda; dy < 0 && c.Size.H()+d <= 0 {
		return fmt.Errorf("stretching cell %s by %dλ in y would collapse its %d-quantum height", c.Name, dy, c.Size.H())
	}
	nearest := func(lines []geom.Coord, at geom.Coord) (geom.Coord, bool) {
		if len(lines) == 0 {
			return 0, false
		}
		best := lines[0]
		for _, l := range lines[1:] {
			if abs(l-at) < abs(best-at) {
				best = l
			}
		}
		return best, true
	}
	if dx != 0 {
		at, ok := nearest(c.StretchX, geom.Coord(atX)*geom.Lambda)
		if !ok {
			return fmt.Errorf("cell %s declares no horizontal stretch lines", c.Name)
		}
		if err := stretch.X(c, []stretch.Insertion{{At: at, Delta: geom.Coord(dx) * geom.Lambda}}); err != nil {
			return err
		}
	}
	if dy != 0 {
		at, ok := nearest(c.StretchY, geom.Coord(atY)*geom.Lambda)
		if !ok {
			return fmt.Errorf("cell %s declares no vertical stretch lines", c.Name)
		}
		if err := stretch.Y(c, []stretch.Insertion{{At: at, Delta: geom.Coord(dy) * geom.Lambda}}); err != nil {
			return err
		}
	}
	return nil
}

func abs(c geom.Coord) geom.Coord {
	if c < 0 {
		return -c
	}
	return c
}

// CheckCellDRC verifies one cell against the Mead & Conway lambda rules.
func CheckCellDRC(c *Cell) []string {
	flat := mask.NewCell(c.Name + "_drc")
	flat.PlaceNamed(c.Name, c.Layout, geom.Identity)
	return checkMaskDRC(flat)
}

// ExtractCellNetlist recovers a cell's transistors from its mask geometry.
func ExtractCellNetlist(c *Cell) (*transistor.Netlist, error) {
	return transistor.Extract(c.Layout)
}

// WriteCellCIF emits one cell's layout as CIF, honoring the cell's
// declared physical lambda the same way WriteCIF honors the spec's.
func WriteCellCIF(w io.Writer, c *Cell) error {
	lambda := c.LambdaCentimicrons
	if lambda <= 0 {
		lambda = cif.DefaultLambdaCentimicrons
	}
	return cif.Write(w, c.Layout, lambda)
}
