// Cellview inspects a library cell: it prints (or writes) every
// representation the cell carries — layout (CIF), sticks, transistors,
// logic, its text fragment, and its cell-design-language form — and can
// verify the cell against the design rules and its own declared netlist.
// This is the per-cell view of the paper's claim that "each cell contains
// seven different representations".
//
// Usage:
//
//	cellview -list                 # names of all library cells
//	cellview regbit                # print summary + sticks + logic
//	cellview -rep cdl aluBit       # print one representation
//	cellview -out dir regbit       # write every representation to files
//	cellview -check regbit         # DRC + extraction consistency
//	cellview -plot regbit.png regbit  # PNG check plot
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bristleblocks/internal/cdl"
	"bristleblocks/internal/cell"
	"bristleblocks/internal/celllib"
	"bristleblocks/internal/cif"
	"bristleblocks/internal/drc"
	"bristleblocks/internal/geom"
	"bristleblocks/internal/layer"
	"bristleblocks/internal/mask"
	"bristleblocks/internal/plot"
	"bristleblocks/internal/transistor"
)

// library enumerates every parameterized cell generator with standard
// example arguments, so each can be instantiated and inspected by name.
var library = map[string]func() (*cell.Cell, error){
	"inverter": func() (*cell.Cell, error) { return celllib.Inverter("inv"), nil },
	"passgate": func() (*cell.Cell, error) { return celllib.PassGate("pg"), nil },
	"nand2":    func() (*cell.Cell, error) { return celllib.Nand2("nand"), nil },
	"regbit": func() (*cell.Cell, error) {
		return celllib.RegBit("reg", "A", "B", "ld", "OP=1", "rd", "OP=2")
	},
	"regbitb": func() (*cell.Cell, error) {
		return celllib.RegBitB("regb", "A", "B", "ld", "OP=1", "rd", "OP=2")
	},
	"dualregbit": func() (*cell.Cell, error) {
		return celllib.DualRegBit("dr", "A", "B", "ld", "OP=1", "rd", "OP=2")
	},
	"shiftbit": func() (*cell.Cell, error) {
		return celllib.ShiftBit("sh", "A", "B", "ld", "OP=3", "rd", "OP=4")
	},
	"shiftbittop": func() (*cell.Cell, error) {
		return celllib.ShiftBitTop("sht", "A", "B", "ld", "OP=3", "rd", "OP=4")
	},
	"alubit": func() (*cell.Cell, error) {
		return celllib.AluBit("alu", "A", "B", "lda", "OP=5", "ldb", "OP=6", "rd", "OP=7")
	},
	"feedbit": func() (*cell.Cell, error) { return celllib.FeedBit("feed", 8) },
	"constbit0": func() (*cell.Cell, error) {
		return celllib.ConstBit("k", "A", "B", false, celllib.ConstWideWidth, "rd", "OP=8")
	},
	"constbit1": func() (*cell.Cell, error) {
		return celllib.ConstBit("k", "A", "B", true, celllib.ConstNarrowWidth, "rd", "OP=8")
	},
	"buspre": func() (*cell.Cell, error) { return celllib.BusPre("pre", "A", "B") },
	"ioportbit": func() (*cell.Cell, error) {
		return celllib.IOPortBit("io", "A", "B", "pad0", "io", "ioen", "OP=9")
	},
	"xferbit": func() (*cell.Cell, error) { return celllib.XferBit("x", "A", "B", "x", "OP=10") },
	"ctlbuf":  func() (*cell.Cell, error) { return celllib.CtlBuf("ld", 1) },
}

func main() {
	list := flag.Bool("list", false, "list library cell names")
	rep := flag.String("rep", "", "print one representation: layout|sticks|transistors|logic|text|cdl")
	out := flag.String("out", "", "write every representation into this directory")
	check := flag.Bool("check", false, "run DRC and extraction consistency on the cell")
	plotPath := flag.String("plot", "", "write a PNG check plot of the cell to this path")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(library))
		for n := range library {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cellview [flags] <cell> (see -list)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	gen, ok := library[flag.Arg(0)]
	if !ok {
		fmt.Fprintf(os.Stderr, "cellview: unknown cell %q (see -list)\n", flag.Arg(0))
		os.Exit(1)
	}
	c, err := gen()
	if err != nil {
		fatal(err)
	}

	switch {
	case *rep != "":
		printRep(c, *rep)
	case *out != "":
		writeAll(c, *out)
	default:
		summary(c)
	}

	if *plotPath != "" {
		f, err := os.Create(*plotPath)
		if err != nil {
			fatal(err)
		}
		if err := plot.PNG(f, c.Layout, &plot.Options{PixelsPerLambda: 8}); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("check plot -> %s\n", *plotPath)
	}

	if *check {
		checkCell(c)
	}
}

func summary(c *cell.Cell) {
	fmt.Printf("%s: %dλ x %dλ, %d bristles, %d transistors, %d µA\n",
		c.Name, c.Size.W()/4, c.Size.H()/4, len(c.Bristles), len(c.Netlist.Txs), c.PowerUA)
	if c.Doc != "" {
		fmt.Printf("\n%s\n", c.Doc)
	}
	fmt.Printf("\nbristles:\n")
	for _, b := range c.Bristles {
		fmt.Printf("  %-10s %-8s %-6s at %v\n", b.Net, b.Flavor, b.Side, b.Position(c.Size))
	}
	if c.Logic != nil {
		fmt.Printf("\nlogic:\n%s\n", c.Logic.Render())
	}
}

func printRep(c *cell.Cell, rep string) {
	switch rep {
	case "layout":
		if err := cif.Write(os.Stdout, c.Layout, cif.DefaultLambdaCentimicrons); err != nil {
			fatal(err)
		}
	case "sticks":
		fmt.Print(c.Sticks.Render(8))
	case "transistors":
		fmt.Println(c.Netlist.String())
	case "logic":
		fmt.Print(c.Logic.Render())
	case "text":
		fmt.Println(c.Doc)
		if c.SimNote != "" {
			fmt.Println(c.SimNote)
		}
	case "cdl":
		fmt.Print(cdl.Format(c))
	default:
		fmt.Fprintf(os.Stderr, "cellview: unknown representation %q\n", rep)
		os.Exit(2)
	}
}

func writeAll(c *cell.Cell, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, c.Name+".cif"))
	if err != nil {
		fatal(err)
	}
	if err := cif.Write(f, c.Layout, cif.DefaultLambdaCentimicrons); err != nil {
		fatal(err)
	}
	f.Close()
	files := map[string]string{
		"sticks.txt":      c.Sticks.Render(8),
		"transistors.txt": c.Netlist.String() + "\n",
		"logic.txt":       c.Logic.Render(),
		"text.txt":        c.Doc + "\n" + c.SimNote + "\n",
		"cell.cdl":        cdl.Format(c),
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%s: representations written to %s/\n", c.Name, dir)
}

func checkCell(c *cell.Cell) {
	flat := mask.NewCell(c.Name + "_flat")
	flat.PlaceNamed(c.Name, c.Layout, geom.Identity)
	if vs := drc.Check(flat, layer.MeadConway(), &drc.Options{MaxViolations: 10}); len(vs) != 0 {
		fmt.Fprintf(os.Stderr, "DRC: %d violations\n", len(vs))
		for _, v := range vs {
			fmt.Fprintln(os.Stderr, " ", v)
		}
		os.Exit(1)
	}
	fmt.Println("DRC clean")
	ext, err := transistor.Extract(c.Layout)
	if err != nil {
		fatal(err)
	}
	if !ext.Equal(c.Netlist) {
		fmt.Fprintln(os.Stderr, "extracted netlist differs from declared:")
		fmt.Fprintln(os.Stderr, ext.Diff(c.Netlist))
		os.Exit(1)
	}
	fmt.Printf("extraction matches: %d transistors\n", len(ext.Txs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cellview:", err)
	os.Exit(1)
}
