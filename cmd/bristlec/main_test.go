package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"bristleblocks"
)

// TestWatchRecompilesOnEdit drives the -watch loop end to end: the first
// compile is cold, an edit to the spec file triggers a warm recompile
// that reuses unchanged cells, and the CIF on disk afterwards is
// byte-identical to a scratch compile of the edited spec.
func TestWatchRecompilesOnEdit(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "chips", "adder4.bb"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "chip.bb")
	cifPath := filepath.Join(dir, "chip.cif")
	if err := os.WriteFile(specPath, src, 0o644); err != nil {
		t.Fatal(err)
	}

	opts := &bristleblocks.Options{Parallelism: 1}
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- runWatch(&buf, specPath, cifPath, opts, 5*time.Millisecond, 2)
	}()

	// Wait for the first compile (it writes the CIF), then edit the spec.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(cifPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch loop never wrote the CIF")
		}
		time.Sleep(5 * time.Millisecond)
	}
	edited := strings.Replace(string(src), "value=1", "value=13", 1)
	if edited == string(src) {
		t.Fatal("example spec carries no const to edit")
	}
	if err := os.WriteFile(specPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runWatch: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("watch loop never saw the edit")
	}

	// Two summary lines; the second (warm) compile must have reused
	// artifacts from the first.
	out := buf.String()
	lines := regexp.MustCompile(`(\d+)/(\d+) artifact hits`).FindAllStringSubmatch(out, -1)
	if len(lines) != 2 {
		t.Fatalf("want 2 compile summaries, got %d in:\n%s", len(lines), out)
	}
	if cold, _ := strconv.Atoi(lines[0][1]); cold != 0 {
		t.Errorf("cold compile reported %s hits, want 0", lines[0][1])
	}
	if warm, _ := strconv.Atoi(lines[1][1]); warm == 0 {
		t.Errorf("warm compile reported 0 artifact hits in:\n%s", out)
	}

	// The watched CIF must match a scratch compile of the edited spec.
	spec, err := bristleblocks.ParseSpec(edited)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := bristleblocks.Compile(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := bristleblocks.WriteCIF(&want, chip); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(cifPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("watched CIF differs from a scratch compile of the edited spec")
	}
}
