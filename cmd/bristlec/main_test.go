package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"bristleblocks"
	"bristleblocks/internal/server"
)

// TestRemoteCompile drives -remote end to end against a live daemon: the
// CIF the daemon returns lands on disk byte-identical to a local compile,
// and the traceparent bristlec injects is the trace id the daemon's
// flight recorder filed the compile under.
func TestRemoteCompile(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	in := filepath.Join("..", "..", "examples", "chips", "adder4.bb")
	cifPath := filepath.Join(t.TempDir(), "chip.cif")
	var buf bytes.Buffer
	if err := runRemote(&buf, ts.Client(), ts.URL, in, cifPath, false); err != nil {
		t.Fatalf("runRemote: %v", err)
	}
	out := buf.String()
	m := regexp.MustCompile(`request (\S+), trace ([0-9a-f]{32})\)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("summary line carries no request/trace ids:\n%s", out)
	}
	reqID, traceID := m[1], m[2]

	// The daemon filed the compile under the same trace id.
	fresp, err := http.Get(ts.URL + "/debug/compiles/" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	var rec struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(fresp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.TraceID != traceID {
		t.Errorf("flight record trace_id = %q, bristlec injected %q", rec.TraceID, traceID)
	}

	// The remote CIF matches a local compile of the same spec.
	src, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := bristleblocks.ParseSpec(string(src))
	if err != nil {
		t.Fatal(err)
	}
	chip, err := bristleblocks.Compile(spec, &bristleblocks.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := bristleblocks.WriteCIF(&want, chip); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(cifPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("remote CIF differs from a local compile")
	}
}

// TestWatchRecompilesOnEdit drives the -watch loop end to end: the first
// compile is cold, an edit to the spec file triggers a warm recompile
// that reuses unchanged cells, and the CIF on disk afterwards is
// byte-identical to a scratch compile of the edited spec.
func TestWatchRecompilesOnEdit(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "chips", "adder4.bb"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "chip.bb")
	cifPath := filepath.Join(dir, "chip.cif")
	if err := os.WriteFile(specPath, src, 0o644); err != nil {
		t.Fatal(err)
	}

	opts := &bristleblocks.Options{Parallelism: 1}
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- runWatch(&buf, specPath, cifPath, opts, 5*time.Millisecond, 2)
	}()

	// Wait for the first compile (it writes the CIF), then edit the spec.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(cifPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch loop never wrote the CIF")
		}
		time.Sleep(5 * time.Millisecond)
	}
	edited := strings.Replace(string(src), "value=1", "value=13", 1)
	if edited == string(src) {
		t.Fatal("example spec carries no const to edit")
	}
	if err := os.WriteFile(specPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runWatch: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("watch loop never saw the edit")
	}

	// Two summary lines; the second (warm) compile must have reused
	// artifacts from the first.
	out := buf.String()
	lines := regexp.MustCompile(`(\d+)/(\d+) artifact hits`).FindAllStringSubmatch(out, -1)
	if len(lines) != 2 {
		t.Fatalf("want 2 compile summaries, got %d in:\n%s", len(lines), out)
	}
	if cold, _ := strconv.Atoi(lines[0][1]); cold != 0 {
		t.Errorf("cold compile reported %s hits, want 0", lines[0][1])
	}
	if warm, _ := strconv.Atoi(lines[1][1]); warm == 0 {
		t.Errorf("warm compile reported 0 artifact hits in:\n%s", out)
	}

	// The watched CIF must match a scratch compile of the edited spec.
	spec, err := bristleblocks.ParseSpec(edited)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := bristleblocks.Compile(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := bristleblocks.WriteCIF(&want, chip); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(cifPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("watched CIF differs from a scratch compile of the edited spec")
	}
}
