// Bristlec is the silicon compiler driver: it reads a chip description
// (.bb), runs the three compiler passes, and writes the mask set plus any
// requested representations — the paper's "one design cycle" workflow.
//
// Usage:
//
//	bristlec chip.bb                   # compile, write chip.cif
//	bristlec -o out.cif chip.bb        # choose the CIF path
//	bristlec -reps outdir chip.bb      # also write all representations
//	bristlec -check chip.bb            # also run DRC and netlist extraction
//	bristlec -stats chip.bb            # print the compilation statistics
//	bristlec -nopads chip.bb           # stop after Pass 2 (core + decoder)
//	bristlec -plot chip.png chip.bb    # PNG check plot of the mask set
//	bristlec -run prog.uc chip.bb      # assemble microcode, run it on the
//	                                   # simulation representation, print the
//	                                   # trace and final register state
//	bristlec -pads io=0xC8 -run ...    # preset input pads before the run
//	bristlec -verify chip.sv chip.bb   # grade waveform scenarios (.sv) on
//	                                   # the compiled simulator; exit 3 if
//	                                   # any vector fails
//	bristlec -j 8 chip.bb              # Pass 1 fan-out on 8 workers
//	bristlec -trace chip.bb            # print per-pass/per-element spans
//	bristlec -trace-out trace.json ... # write the compile trace as Chrome
//	                                   # trace_event JSON (open in Perfetto
//	                                   # or chrome://tracing)
//	bristlec -watch chip.bb            # recompile on every edit, reusing
//	                                   # unchanged cells from a warm
//	                                   # artifact store
//	bristlec -remote http://host:8723 chip.bb
//	                                   # ship the spec to a bbd daemon
//	                                   # instead of compiling locally; the
//	                                   # request carries a W3C traceparent
//	                                   # so the daemon's spans join this
//	                                   # invocation's trace
//
// Remote mode writes the daemon's CIF to the usual output path and prints
// the trace id; it honors -nopads but skips the local-only extras
// (-check, -run, -plot, -reps, -trace, -verify).
//
// Watch mode is the paper's edit-compile design cycle as a loop: the spec
// file is polled for changes and each save recompiles incrementally,
// printing the latency and artifact-store hit ratio. Watch mode writes
// the CIF on every compile but skips the one-shot extras (-check, -run,
// -plot, -reps, -trace, -verify).
//
// Exit codes: 0 success; 1 a parse, compile, or I/O error; 2 bad usage;
// 3 the chip compiled but failed verification (a -check DRC or netlist
// mismatch, or a -verify scenario below 100%). Scripts can tell a broken
// description (1) from a broken chip (3).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"bristleblocks"
	"bristleblocks/internal/incr"
	"bristleblocks/internal/scenario"
	"bristleblocks/internal/trace"
)

// exitVerifyFailed is the exit code for a chip that compiled cleanly but
// failed verification: a -check DRC violation or netlist mismatch, or a
// -verify scenario grading below 100%. Parse/compile/I/O errors exit 1
// (fatal) and usage errors exit 2, so the three failure classes are
// distinguishable to scripts and CI.
const exitVerifyFailed = 3

func main() {
	out := flag.String("o", "", "output CIF path (default: input with .cif)")
	reps := flag.String("reps", "", "directory to write all representations into")
	check := flag.Bool("check", false, "run DRC and compare extracted vs declared netlist")
	stats := flag.Bool("stats", false, "print compilation statistics")
	noPads := flag.Bool("nopads", false, "stop after Pass 2 (no pad ring)")
	run := flag.String("run", "", "microcode source file to assemble and simulate")
	verifySV := flag.String("verify", "", "scenario file (.sv) to grade against the compiled chip; exits 3 if any vector fails")
	plotPath := flag.String("plot", "", "write a PNG check plot of the chip to this path")
	padsIn := flag.String("pads", "", "preset I/O element pads before -run, e.g. io=0xC8 (comma separated)")
	jobs := flag.Int("j", 0, "worker pool size for Pass 1's element fan-out and Pass 3's speculative routing (0 = GOMAXPROCS, 1 = serial; output is identical at every width)")
	showTrace := flag.Bool("trace", false, "print the compile trace (per-pass and per-element spans)")
	traceOut := flag.String("trace-out", "", "write the compile trace as Chrome trace_event JSON to this path")
	watch := flag.Bool("watch", false, "poll the spec file and recompile on every change, reusing unchanged cells from a warm artifact store")
	watchInterval := flag.Duration("watch-interval", 250*time.Millisecond, "poll interval for -watch")
	watchMax := flag.Int("watch-max", 0, "with -watch, exit after this many successful compiles (0 = until interrupted)")
	remote := flag.String("remote", "", "compile via a bbd daemon at this base URL (e.g. http://localhost:8723) instead of locally; injects a traceparent so the daemon joins this invocation's trace")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bristlec [flags] chip.bb")
		flag.PrintDefaults()
		os.Exit(2)
	}
	in := flag.Arg(0)
	if *remote != "" {
		cifPath := *out
		if cifPath == "" {
			cifPath = strings.TrimSuffix(in, filepath.Ext(in)) + ".cif"
		}
		if err := runRemote(os.Stdout, http.DefaultClient, *remote, in, cifPath, *noPads); err != nil {
			fatal(err)
		}
		return
	}
	if *watch {
		cifPath := *out
		if cifPath == "" {
			cifPath = strings.TrimSuffix(in, filepath.Ext(in)) + ".cif"
		}
		opts := &bristleblocks.Options{SkipPads: *noPads, Parallelism: *jobs}
		if err := runWatch(os.Stdout, in, cifPath, opts, *watchInterval, *watchMax); err != nil {
			fatal(err)
		}
		return
	}
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	spec, err := bristleblocks.ParseSpec(string(src))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", in, err))
	}
	ctx := context.Background()
	var tr *trace.Trace
	if *showTrace || *traceOut != "" {
		tr = trace.New()
		ctx = trace.WithTrace(ctx, tr)
	}
	chip, err := bristleblocks.CompileCtx(ctx, spec, &bristleblocks.Options{
		SkipPads:    *noPads,
		Parallelism: *jobs,
	})
	if err != nil {
		fatal(fmt.Errorf("compile %s: %w", spec.Name, err))
	}

	cifPath := *out
	if cifPath == "" {
		cifPath = strings.TrimSuffix(in, filepath.Ext(in)) + ".cif"
	}
	f, err := os.Create(cifPath)
	if err != nil {
		fatal(err)
	}
	if err := bristleblocks.WriteCIF(f, chip); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d transistors, %d columns, %d pads -> %s\n",
		spec.Name, chip.Stats.Transistors, chip.Stats.Columns, chip.Stats.PadCount, cifPath)

	if *showTrace {
		fmt.Print(tr.String())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChrome(f, tr.Spans()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("  trace -> %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}

	if *stats {
		st := chip.Stats
		fmt.Printf("  core    %dλ x %dλ\n", st.CoreBounds.W()/4, st.CoreBounds.H()/4)
		fmt.Printf("  chip    %dλ x %dλ (%.0f square lambda)\n",
			st.ChipBounds.W()/4, st.ChipBounds.H()/4, bristleblocks.AreaLambda(chip))
		fmt.Printf("  controls %d, PLA terms %d, power %d µA\n", st.Controls, st.PLATerms, st.PowerUA)
		fmt.Printf("  passes  core %s, control %s, pads %s (total %s)\n",
			chip.Times.Core, chip.Times.Control, chip.Times.Pads, chip.Times.Total)
	}

	if *check {
		if vs := bristleblocks.CheckDRC(chip); len(vs) != 0 {
			fmt.Fprintf(os.Stderr, "DRC: %d violations\n", len(vs))
			for _, v := range vs {
				fmt.Fprintln(os.Stderr, " ", v)
			}
			os.Exit(exitVerifyFailed)
		}
		fmt.Println("  DRC clean")
		ext, err := bristleblocks.ExtractNetlist(chip)
		if err != nil {
			fatal(fmt.Errorf("extract: %w", err))
		}
		if ext.GlobalSignature(nil) != chip.Netlist.GlobalSignature(nil) {
			fmt.Fprintln(os.Stderr, "extracted netlist differs from declared netlist")
			os.Exit(exitVerifyFailed)
		}
		fmt.Printf("  extraction matches: %d transistors\n", len(ext.Txs))
	}

	if *reps != "" {
		if err := writeReps(*reps, chip); err != nil {
			fatal(err)
		}
	}

	if *plotPath != "" {
		f, err := os.Create(*plotPath)
		if err != nil {
			fatal(err)
		}
		if err := bristleblocks.WritePlot(f, chip, 0); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("  check plot -> %s\n", *plotPath)
	}

	if *run != "" {
		if err := runProgram(chip, spec, *run, *padsIn); err != nil {
			fatal(err)
		}
	}

	if *verifySV != "" {
		if err := runVerify(chip, *verifySV); err != nil {
			fatal(err)
		}
	}
}

// runRemote is the client half of the compile service: read the spec,
// POST it to a bbd daemon with a freshly minted W3C traceparent header —
// so the daemon's pass spans land under this invocation's trace id — and
// write the returned CIF where a local compile would have. The daemon
// echoes the trace id back; printing it gives the operator the join key
// into the daemon's flight recorder and any exported OTLP stream.
func runRemote(w io.Writer, client *http.Client, base, in, cifPath string, noPads bool) error {
	src, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	u := strings.TrimRight(base, "/") + "/compile?reps=cif"
	if noPads {
		u += "&nopads=1"
	}
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(src))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/plain")
	sc := trace.NewSpanContext()
	req.Header.Set("traceparent", sc.Traceparent())
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("remote compile: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("remote compile: %s: %s", resp.Status, e.Error)
	}
	var cr struct {
		RequestID string `json:"request_id"`
		TraceID   string `json:"trace_id"`
		Chip      string `json:"chip"`
		Cached    bool   `json:"cached"`
		CIF       string `json:"cif"`
		// core.Stats carries no json tags; fields keep their Go names.
		Stats struct {
			Transistors int
			Columns     int
			PadCount    int
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return fmt.Errorf("remote compile: decoding response: %w", err)
	}
	if cr.CIF == "" {
		return fmt.Errorf("remote compile: daemon returned no CIF")
	}
	if err := os.WriteFile(cifPath, []byte(cr.CIF), 0o644); err != nil {
		return err
	}
	served := "compiled"
	if cr.Cached {
		served = "cached"
	}
	fmt.Fprintf(w, "%s: %d transistors, %d columns, %d pads -> %s (%s by %s, request %s, trace %s)\n",
		cr.Chip, cr.Stats.Transistors, cr.Stats.Columns, cr.Stats.PadCount,
		cifPath, served, strings.TrimRight(base, "/"), cr.RequestID, cr.TraceID)
	return nil
}

// runVerify grades every scenario in a .sv file against the compiled
// chip and prints one verdict line each. An unreadable or unparsable
// file is an input error (exit 1 via fatal); a scenario below 100% —
// failed vectors or a graded setup error — exits with exitVerifyFailed.
func runVerify(chip *bristleblocks.Chip, path string) error {
	scs, err := scenario.ParseFile(path)
	if err != nil {
		return err
	}
	verdicts := scenario.GradeAll(chip, scs)
	failed := 0
	fmt.Printf("verify %s: %d scenarios\n", path, len(verdicts))
	for _, v := range verdicts {
		if v.Error != "" {
			failed++
			fmt.Printf("  %-20s ERROR: %s\n", v.Scenario, v.Error)
			continue
		}
		mark := "ok"
		if !v.Passed100() {
			failed++
			mark = "FAIL"
		}
		fmt.Printf("  %-20s %s %d/%d vectors (%d%%)\n", v.Scenario, mark, v.Passed, v.Vectors, v.GradePercent)
		for _, f := range v.Failures {
			fmt.Printf("    %s\n", f)
		}
	}
	if len(verdicts) > 0 {
		d := verdicts[0].Design
		fmt.Printf("  design score %d (area %dλ², %d PLA terms, %d µA)\n",
			d.Score, d.AreaLambda2, d.PLATerms, d.PowerUA)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "bristlec: %d of %d scenarios failed verification\n", failed, len(verdicts))
		os.Exit(exitVerifyFailed)
	}
	return nil
}

// runWatch is the edit-compile loop: poll the spec file's mtime and
// recompile on every change against a warm artifact store, so each save
// regenerates only the cells the edit touched. Parse and compile errors
// are reported and the loop keeps watching; maxCompiles bounds the loop
// for tests (0 = run until interrupted).
func runWatch(w io.Writer, in, cifPath string, opts *bristleblocks.Options, interval time.Duration, maxCompiles int) error {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	store, err := incr.New(0, "")
	if err != nil {
		return err
	}
	ctx := incr.WithStore(context.Background(), store)
	fmt.Fprintf(w, "watching %s (every %s; ^C to stop)\n", in, interval)
	var lastMod time.Time
	var lastSize int64
	compiles := 0
	for first := true; ; first = false {
		if !first {
			time.Sleep(interval)
		}
		fi, err := os.Stat(in)
		if err != nil {
			if first {
				return err
			}
			fmt.Fprintln(os.Stderr, "bristlec:", err)
			continue
		}
		if fi.ModTime().Equal(lastMod) && fi.Size() == lastSize {
			continue
		}
		lastMod, lastSize = fi.ModTime(), fi.Size()
		src, err := os.ReadFile(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bristlec:", err)
			continue
		}
		spec, err := bristleblocks.ParseSpec(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bristlec: %s: %v\n", in, err)
			continue
		}
		before := store.Counters()
		start := time.Now()
		chip, err := bristleblocks.CompileCtx(ctx, spec, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bristlec: compile %s: %v\n", spec.Name, err)
			continue
		}
		elapsed := time.Since(start)
		f, err := os.Create(cifPath)
		if err != nil {
			return err
		}
		if err := bristleblocks.WriteCIF(f, chip); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		after := store.Counters()
		hits := after.Hits - before.Hits
		misses := after.Misses - before.Misses
		var ratio float64
		if hits+misses > 0 {
			ratio = float64(hits) / float64(hits+misses)
		}
		compiles++
		fmt.Fprintf(w, "%s: %d transistors, %d columns, %d pads -> %s (%s, %d/%d artifact hits, ratio %.2f)\n",
			spec.Name, chip.Stats.Transistors, chip.Stats.Columns, chip.Stats.PadCount,
			cifPath, elapsed.Round(time.Microsecond), hits, hits+misses, ratio)
		if maxCompiles > 0 && compiles >= maxCompiles {
			return nil
		}
	}
}

// runProgram assembles a microcode source file and executes it on the
// chip's Simulation representation.
func runProgram(chip *bristleblocks.Chip, spec *bristleblocks.Spec, path, padsIn string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	program, err := bristleblocks.AssembleMicrocode(spec, string(src))
	if err != nil {
		return err
	}
	machine, err := chip.NewSim()
	if err != nil {
		return err
	}
	if err := presetPads(chip, padsIn); err != nil {
		return err
	}
	trace := machine.Run(program)

	var buses []string
	if len(spec.Buses) > 0 {
		for _, b := range spec.Buses {
			buses = append(buses, b.Name)
		}
	} else {
		buses = []string{"A", "B"}
	}
	fmt.Printf("ran %d instructions from %s\n\n", len(program), path)
	fmt.Println("listing:")
	for i, w := range program {
		fmt.Printf("  %3d  %#06x  %s\n", i, w, bristleblocks.DisassembleMicrocode(spec, w))
	}
	fmt.Println()
	fmt.Println(bristleblocks.FormatTrace(trace, buses))
	fmt.Println("final element state:")
	for _, col := range chip.Columns() {
		if m, ok := chip.Model(col.Name).(interface{ Value() uint64 }); ok {
			fmt.Printf("  %-12s %#x\n", col.Name, m.Value())
		}
	}
	return nil
}

// presetPads applies "-pads name=value,name=value" to the I/O element
// models before a run.
func presetPads(chip *bristleblocks.Chip, spec string) error {
	if spec == "" {
		return nil
	}
	for _, kv := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return fmt.Errorf("-pads entry %q is not name=value", kv)
		}
		v, err := strconv.ParseUint(val, 0, 64)
		if err != nil {
			return fmt.Errorf("-pads %s: bad value %q", name, val)
		}
		m, ok := chip.Model(name).(interface{ SetPads(uint64) })
		if !ok {
			return fmt.Errorf("-pads: element %q is not an I/O port", name)
		}
		m.SetPads(v)
	}
	return nil
}

func writeReps(dir string, chip *bristleblocks.Chip) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
	}
	if err := write("sticks.txt", chip.Sticks.Render(16)); err != nil {
		return err
	}
	if err := write("transistors.txt", chip.Netlist.String()+"\n"); err != nil {
		return err
	}
	if err := write("logic.txt", chip.Logic.Render()); err != nil {
		return err
	}
	if err := write("manual.txt", chip.Text); err != nil {
		return err
	}
	if err := write("block.txt", chip.Block+"\n"+chip.Logical); err != nil {
		return err
	}
	fmt.Printf("  representations -> %s/\n", dir)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bristlec:", err)
	os.Exit(1)
}
