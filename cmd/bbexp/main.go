// Bbexp runs the experiment harness: it regenerates every figure and
// quantitative claim from the paper's evaluation (F1-F3, T1-T3) plus the
// ablations A1-A5 documented in DESIGN.md, and prints the tables that
// EXPERIMENTS.md records.
//
// Usage:
//
//	bbexp            # run everything
//	bbexp T1 A2      # run a subset by id
//	bbexp -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bristleblocks/internal/experiments"
)

type experiment struct {
	id   string
	desc string
	run  func() string
}

var all = []experiment{
	{"F1", "physical chip format (Figure 1)", experiments.F1},
	{"F2", "logical chip format (Figure 2)", experiments.F2},
	{"F3", "compiler-space coverage sweep (Figure 3)", experiments.F3},
	{"T1", "compiled area vs hand layout (±10% claim)", experiments.T1},
	{"T2", "compile time, small vs large chip", experiments.T2},
	{"T3", "representation completeness", experiments.T3},
	{"A1", "stretchable cells vs hand channels / fixed cells", experiments.A1},
	{"A2", "Roto-Router pad rotation", experiments.A2},
	{"A3", "decoder text-array optimization", experiments.A3},
	{"A4", "conditional assembly (PROTOTYPE)", experiments.A4},
	{"A5", "smart-cell variant selection", experiments.A5},
}

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.id, e.desc)
		}
		return
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}

	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		ran++
		fmt.Printf("==== %s: %s ====\n", e.id, e.desc)
		start := time.Now()
		fmt.Println(e.run())
		fmt.Printf("(%s in %s)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %v (try -list)\n", flag.Args())
		os.Exit(1)
	}
}
