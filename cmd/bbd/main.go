// Bbd is the Bristle Blocks compile daemon: the silicon compiler as a
// service. It answers POST /compile with chip statistics and any requested
// representations, serving repeated compiles of the same description from
// a content-addressed cache instead of re-running the three passes.
//
// Usage:
//
//	bbd                                  # serve on :8723
//	bbd -addr :9000 -pool 8              # custom listen address, 8 workers
//	bbd -cache-dir /var/cache/bbd        # persistent compile cache
//	bbd -cache-mb 64 -timeout 30s        # memory budget and per-request deadline
//	bbd -j 4                             # Pass 1 fan-out width per compile
//
// Endpoints:
//
//	POST /compile[?reps=cif,text,block,logical|all][&nopads=1&skipopt=1&skiproto=1&evenpads=1&skipreps=1][&trace=1]
//	GET  /healthz
//	GET  /debug/vars
//
// With trace=1 the response carries a "trace" array: one span per pass,
// per element generation, and per cell stretch (a cache hit is a single
// cache.lookup span). /debug/vars exports the same signal in aggregate as
// the latency_ms_gen_element histogram.
//
// SIGINT/SIGTERM drain gracefully: the listener stops, queued and
// in-flight compiles finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bristleblocks/internal/cache"
	"bristleblocks/internal/server"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	pool := flag.Int("pool", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "request queue depth (0 = 4x pool)")
	cacheMB := flag.Int64("cache-mb", 256, "in-memory compile cache budget in MiB")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent compile cache (empty = memory only)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request compile deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	jobs := flag.Int("j", 1, "Pass 1 fan-out width per compile (0 = GOMAXPROCS; 1 serves throughput, the worker pool is the concurrency)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: bbd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	c, err := cache.New(*cacheMB<<20, *cacheDir)
	if err != nil {
		log.Fatalf("bbd: %v", err)
	}
	srv, err := server.New(server.Config{
		Cache:       c,
		Workers:     *pool,
		QueueDepth:  *queue,
		Timeout:     *timeout,
		Parallelism: *jobs,
	})
	if err != nil {
		log.Fatalf("bbd: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("bbd: serving on %s (pool=%d, cache=%dMiB, dir=%q, timeout=%v)",
		*addr, srv.Workers(), *cacheMB, *cacheDir, *timeout)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("bbd: %v", err)
	case s := <-sig:
		log.Printf("bbd: %v — draining (budget %v)", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("bbd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("bbd: %v", err)
	}
	log.Print("bbd: drained cleanly")
}
