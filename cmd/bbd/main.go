// Bbd is the Bristle Blocks compile daemon: the silicon compiler as a
// service. It answers POST /compile with chip statistics and any requested
// representations, serving repeated compiles of the same description from
// a content-addressed cache instead of re-running the three passes, and
// POST /verify with graded scenario verdicts: a chip description plus a
// waveform scenario file in, functional percent-correct per scenario and
// a design score out (see internal/scenario for the .sv vector format).
//
// Usage:
//
//	bbd                                  # serve on :8723
//	bbd -addr :9000 -pool 8              # custom listen address, 8 workers
//	bbd -cache-dir /var/cache/bbd        # persistent compile cache
//	bbd -cache-mb 64 -timeout 30s        # memory budget and per-request deadline
//	bbd -j 4                             # Pass 1 fan-out width per compile
//	bbd -admin-addr :8724                # operator surface on its own port
//	bbd -log-level debug -log-json       # structured log stream as JSON
//	bbd -flight-n 512                    # flight recorder keeps 512 compiles
//	bbd -max-sessions 32 -session-ttl 5m # edit-session table sizing
//	bbd -trace-export traces.jsonl       # OTLP/JSON span export, one line per compile
//	bbd -profile-interval 1m             # continuous CPU+heap profile ring
//	bbd -slo-window 1h -slo-availability 0.999  # error-budget objectives
//	bbd -peers http://a:8723,http://b:8723 -self http://a:8723   # join a cache-peering farm
//	bbd -peers ... -self http://c:8723 -coordinator              # front the farm, routing cold compiles
//	bbd -peer-timeout 150ms              # per-peer fetch/put budget
//
// Endpoints:
//
//	POST /compile[?reps=cif,text,block,logical,sticks|all][&nopads=1&skipopt=1&skipmin=1&skiproto=1&evenpads=1&skipreps=1][&trace=1|chrome]
//	POST /compile/batch            {"specs":[...]} in, NDJSON stream of per-spec results out (same query options)
//	POST /verify                   grade {"spec","vectors"} JSON: one verdict per scenario
//	POST /session                  open an edit session (warm per-client artifact store)
//	POST /session/{id}/compile     incremental compile (same query options as /compile)
//	DELETE /session/{id}           close a session
//	GET  /healthz
//	GET  /metrics                  Prometheus text format
//	GET  /debug/vars               expvar JSON (histograms carry p50/p95/p99)
//	GET  /debug/compiles           flight recorder: last N compiles, newest first
//	GET  /debug/compiles/{id}      one compile's full span tree (?format=chrome)
//	GET  /debug/slo                error-budget burn-rate report (JSON)
//	GET  /debug/profiles           continuous-profiling ring index (404 unless -profile-interval)
//	GET  /debug/profiles/{id}      one captured pprof profile
//	GET  /debug/pprof/             net/http/pprof profiler
//	GET  /cache/{key}              peer shard protocol: fetch a cached result (farm-internal)
//	PUT  /cache/{key}              peer shard protocol: store a result (farm-internal)
//
// With -peers, the daemons listed form a farm: each compile result is
// stored on the node that owns its cache key under a consistent-hash
// ring, and a miss consults the owner before compiling. Every node
// passes the same -peers list (order doesn't matter) and names itself
// with -self; a dead, slow, or corrupt peer degrades to a local compile,
// never an error (see docs/FARM.md). -coordinator makes this node route
// cold compiles to the least-loaded worker instead of compiling locally.
//
// The compile endpoints accept a W3C traceparent header: the compile's
// spans join the caller's distributed trace (the trace id echoes back in
// the response's "trace_id" and in the flight record), and -trace-export
// appends each compile's tree as one OTLP/JSON line.
//
// With trace=1 the response carries a "trace" array: one span per pass,
// per element generation, and per cell stretch (a cache hit is a single
// cache.lookup span); trace=chrome returns the same tree as Chrome
// trace_event JSON ready for Perfetto. Every response carries an
// X-Request-Id header that keys into the flight recorder and the log
// stream.
//
// Every cold compile is verified before it is served: the daemon replays
// the microcode program space against both the decoder's logic
// representation and the compiled switch-level simulator and pages (via
// the log stream and the bbd_verify_* metrics) if the two ever disagree.
// Cache hits skip verification — the stored result already passed.
// -verify-disable turns the check off for benchmarking. The skipmin=1
// query option disables the Pass 2 PLA minimizer for one compile (the
// bbd_pla_* metrics expose what the minimizer saves when it is on).
//
// By default the admin endpoints share the serving port; -admin-addr moves
// them to a second listener so the serving port can face untrusted clients
// while the profiler stays on a firewalled one.
//
// SIGINT/SIGTERM drain gracefully: the listener stops, queued and
// in-flight compiles finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bristleblocks/internal/cache"
	"bristleblocks/internal/obs/slo"
	"bristleblocks/internal/server"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	adminAddr := flag.String("admin-addr", "", "separate listen address for the operator surface (metrics, flight recorder, pprof); empty = share -addr")
	pool := flag.Int("pool", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "request queue depth (0 = 4x pool)")
	cacheMB := flag.Int64("cache-mb", 256, "in-memory compile cache budget in MiB")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent compile cache (empty = memory only)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request compile deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	jobs := flag.Int("j", 1, "fan-out width per compile for Pass 1 elements and Pass 3 routing (0 = GOMAXPROCS; 1 serves throughput, the worker pool is the concurrency)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit the log stream as JSON lines instead of logfmt-style text")
	flightN := flag.Int("flight-n", 0, "flight recorder size: last N compiles kept with span trees (0 = 128)")
	maxSessions := flag.Int("max-sessions", 0, "concurrently live edit sessions; at capacity the LRU session is retired (0 = 16)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle deadline after which an edit session expires (0 = 15m)")
	sessionCacheMB := flag.Int("session-cache-mb", 0, "per-session artifact store budget in MiB (0 = 64)")
	verifyDisable := flag.Bool("verify-disable", false, "skip the logic-vs-simulation check on cold compiles (benchmarking only)")
	traceExport := flag.String("trace-export", "", "append one OTLP/JSON line per compile trace to this file (empty = off)")
	profileInterval := flag.Duration("profile-interval", 0, "continuous-profiling ring: capture a CPU+heap profile pair this often, served at /debug/profiles (0 = off)")
	profileKeep := flag.Int("profile-keep", 0, "profiles retained per kind in the ring (0 = 16)")
	profileDir := flag.String("profile-dir", "", "directory for the profile ring (empty = a fresh temp dir)")
	sloWindow := flag.Duration("slo-window", 0, "error-budget rolling window behind bbd_slo_* and /debug/slo (0 = 1h)")
	sloAvail := flag.Float64("slo-availability", 0, "availability objective as a fraction of eligible requests (0 = 0.999)")
	sloLatency := flag.Float64("slo-latency", 0, "latency objective: fraction of good requests under -slo-latency-ms (0 = 0.99)")
	sloLatencyMS := flag.Duration("slo-latency-threshold", 0, "latency threshold the objective counts against (0 = 500ms)")
	peers := flag.String("peers", "", "comma-separated base URLs of every farm node including this one (empty = standalone)")
	self := flag.String("self", "", "this node's base URL as it appears in -peers (required with -peers)")
	coordinator := flag.Bool("coordinator", false, "route cold compiles to the least-loaded -peers worker instead of compiling locally")
	peerTimeout := flag.Duration("peer-timeout", 0, "per-peer cache fetch/put and load-poll budget (0 = 150ms)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: bbd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	logger, err := newLogger(*logLevel, *logJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbd:", err)
		os.Exit(2)
	}

	c, err := cache.New(*cacheMB<<20, *cacheDir)
	if err != nil {
		logger.Error("cache init failed", "err", err)
		os.Exit(1)
	}
	var exportW io.Writer
	if *traceExport != "" {
		f, err := os.OpenFile(*traceExport, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("trace export open failed", "err", err)
			os.Exit(1)
		}
		defer f.Close()
		exportW = f
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	srv, err := server.New(server.Config{
		Cache:              c,
		Peers:              peerList,
		SelfURL:            *self,
		Coordinator:        *coordinator,
		PeerTimeout:        *peerTimeout,
		Workers:            *pool,
		QueueDepth:         *queue,
		Timeout:            *timeout,
		Parallelism:        *jobs,
		Logger:             logger,
		FlightRecorderSize: *flightN,
		MaxSessions:        *maxSessions,
		SessionTTL:         *sessionTTL,
		SessionCacheMB:     *sessionCacheMB,
		DisableVerify:      *verifyDisable,
		TraceExport:        exportW,
		ProfileInterval:    *profileInterval,
		ProfileDir:         *profileDir,
		ProfileKeep:        *profileKeep,
		SLO: slo.Config{
			Window:             *sloWindow,
			AvailabilityTarget: *sloAvail,
			LatencyTarget:      *sloLatency,
			LatencyThreshold:   *sloLatencyMS,
		},
	})
	if err != nil {
		logger.Error("server init failed", "err", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 2)
	go func() { errc <- hs.ListenAndServe() }()
	var admin *http.Server
	if *adminAddr != "" {
		admin = &http.Server{Addr: *adminAddr, Handler: srv.AdminHandler()}
		go func() { errc <- admin.ListenAndServe() }()
	}
	logger.Info("serving",
		"addr", *addr, "admin_addr", *adminAddr,
		"pool", srv.Workers(), "cache_mb", *cacheMB, "cache_dir", *cacheDir,
		"timeout", *timeout, "log_level", *logLevel,
		"peers", len(peerList), "coordinator", *coordinator)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		logger.Info("draining", "signal", s.String(), "budget", *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("http shutdown", "err", err)
	}
	if admin != nil {
		if err := admin.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("admin shutdown", "err", err)
		}
	}
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("drain failed", "err", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// newLogger builds the daemon's slog stream on stderr at the requested
// level, as text or JSON lines.
func newLogger(level string, asJSON bool) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q wants debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	if asJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
}
