package bristleblocks_test

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd/ binary into a temp dir and returns its path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestBristlecEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "bristlec")
	dir := t.TempDir()
	cif := filepath.Join(dir, "chip.cif")
	plot := filepath.Join(dir, "chip.png")
	reps := filepath.Join(dir, "reps")

	out := runTool(t, bin,
		"-o", cif, "-check", "-stats", "-reps", reps, "-plot", plot,
		"-run", "examples/chips/adder4.uc", "examples/chips/adder4.bb")

	for _, want := range []string{
		"DRC clean", "extraction matches", "check plot ->",
		"representations ->", "ran 10 instructions", "acc0", "0x5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, f := range []string{cif, plot,
		filepath.Join(reps, "manual.txt"), filepath.Join(reps, "sticks.txt")} {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Errorf("artifact %s missing or empty (%v)", f, err)
		}
	}
}

func TestBristlecPadsAndShift(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "bristlec")
	out := runTool(t, bin,
		"-o", filepath.Join(t.TempDir(), "s.cif"),
		"-pads", "io=0xC8",
		"-run", "examples/chips/shifter8.uc", "examples/chips/shifter8.bb")
	if !strings.Contains(out, "r            0x19") {
		t.Errorf("shift result missing (want r = 0xC8>>3 = 0x19):\n%s", out)
	}
}

func TestBristlecRejectsBadInput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "bristlec")
	bad := filepath.Join(t.TempDir(), "bad.bb")
	if err := os.WriteFile(bad, []byte("chip oops\nnonsense directive\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, bad).CombinedOutput()
	if err == nil {
		t.Fatalf("bad description accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown directive") {
		t.Errorf("unhelpful error: %s", out)
	}
}

// exitCode runs the binary and returns its exit code with combined output.
func exitCode(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestBristlecExitCodes pins the CLI's exit-code contract: 1 for a
// parse/compile error, 3 for a chip that compiled but failed -verify,
// 0 for a clean graded run — so CI and scripts can tell a broken
// description from a broken chip.
func TestBristlecExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "bristlec")
	dir := t.TempDir()

	bad := filepath.Join(dir, "bad.bb")
	if err := os.WriteFile(bad, []byte("chip oops\nnonsense directive\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := exitCode(t, bin, bad); code != 1 {
		t.Errorf("parse error: exit %d, want 1\n%s", code, out)
	}

	failing := filepath.Join(dir, "fail.sv")
	if err := os.WriteFile(failing, []byte("scenario wrong\nstep nop | A=0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := exitCode(t, bin,
		"-o", filepath.Join(dir, "a.cif"), "-verify", failing, "examples/chips/adder4.bb")
	if code != 3 {
		t.Errorf("failing scenario: exit %d, want 3\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL 0/1 vectors") {
		t.Errorf("verdict line missing:\n%s", out)
	}

	code, out = exitCode(t, bin,
		"-o", filepath.Join(dir, "b.cif"), "-verify", "examples/scenarios/adder4.sv", "examples/chips/adder4.bb")
	if code != 0 {
		t.Errorf("passing scenarios: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "12/12 vectors (100%)") || !strings.Contains(out, "design score") {
		t.Errorf("graded output missing:\n%s", out)
	}

	if code, out = exitCode(t, bin); code != 2 {
		t.Errorf("usage error: exit %d, want 2\n%s", code, out)
	}
}

func TestCellviewEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cellview")

	list := runTool(t, bin, "-list")
	for _, want := range []string{"regbit", "dualregbit", "alubit", "ctlbuf"} {
		if !strings.Contains(list, want) {
			t.Errorf("-list missing %s:\n%s", want, list)
		}
	}

	// Every listed cell must pass its own -check.
	for _, name := range strings.Fields(list) {
		out := runTool(t, bin, "-check", name)
		if !strings.Contains(out, "DRC clean") || !strings.Contains(out, "extraction matches") {
			t.Errorf("%s: check output:\n%s", name, out)
		}
	}

	out := runTool(t, bin, "-rep", "cdl", "regbit")
	if !strings.Contains(out, "cell reg") || !strings.Contains(out, "endcell") {
		t.Errorf("cdl dump wrong:\n%s", out)
	}
}

func TestBbexpList(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "bbexp")
	out := runTool(t, bin, "-list")
	for _, id := range []string{"F1", "F2", "F3", "T1", "T2", "T3", "A1", "A2", "A3", "A4", "A5"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list missing %s:\n%s", id, out)
		}
	}
	// One fast experiment end to end.
	run := runTool(t, bin, "A5")
	if !strings.Contains(run, "value=15") {
		t.Errorf("A5 output:\n%s", run)
	}
}
