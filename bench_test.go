// Benchmarks: one testing.B per experiment in EXPERIMENTS.md. Each bench
// regenerates its figure or table row; `go test -bench . -benchmem` is the
// whole evaluation. Custom metrics report the experiment's headline number
// alongside time/op (area ratios, wire-length ratios, term counts).
package bristleblocks_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bristleblocks"
	"bristleblocks/internal/baseline"
	"bristleblocks/internal/cache"
	"bristleblocks/internal/core"
	"bristleblocks/internal/experiments"
	"bristleblocks/internal/pads"
	"bristleblocks/internal/server"
)

func compileSuite(b *testing.B, idx int, opts *core.Options) *core.Chip {
	b.Helper()
	chip, err := core.Compile(experiments.SpecFor(experiments.Suite[idx]), opts)
	if err != nil {
		b.Fatal(err)
	}
	return chip
}

// BenchmarkF1BlockDiagram regenerates Figure 1 (the physical chip format).
func BenchmarkF1BlockDiagram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.F1(); !strings.Contains(out, "DECODER") {
			b.Fatal("block diagram missing decoder")
		}
	}
}

// BenchmarkF2LogicalDiagram regenerates Figure 2 (the logical chip format).
func BenchmarkF2LogicalDiagram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.F2(); !strings.Contains(out, "upper bus") {
			b.Fatal("logical diagram missing buses")
		}
	}
}

// BenchmarkF3GeneralitySweep regenerates Figure 3's coverage sweep: 30 chip
// configurations compiled per iteration.
func BenchmarkF3GeneralitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.F3(); !strings.Contains(out, "coverage: 30/30") {
			b.Fatal("coverage regressed")
		}
	}
}

// BenchmarkT1AreaVsHand regenerates the ±10% area claim; the ratio for the
// largest in-regime chip is reported as a metric.
func BenchmarkT1AreaVsHand(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		chip := compileSuite(b, 4, &core.Options{SkipPads: true}) // "large"
		ratio = baseline.AreaRatio(chip)
	}
	b.ReportMetric(ratio, "area-ratio")
	if ratio < 0.85 || ratio > 1.15 {
		b.Fatalf("area ratio %.2f left the paper's band", ratio)
	}
}

// BenchmarkCompileSmall and BenchmarkCompileLarge are the two ends of the
// T2 compile-time claim (paper: 4 min vs 10-15 min on a PDP-10; the shape
// is the ratio between them, roughly 2.5-3.75x).
func BenchmarkCompileSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		compileSuite(b, 1, nil)
	}
}

func BenchmarkCompileLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		compileSuite(b, 4, nil)
	}
}

// BenchmarkCompileXL compiles the 32-bit chip beyond the paper's regime.
func BenchmarkCompileXL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		compileSuite(b, 5, nil)
	}
}

// BenchmarkT3Representations regenerates the completeness table: all seven
// representations of one chip per iteration (the paper shipped five).
func BenchmarkT3Representations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chip := compileSuite(b, 2, &core.Options{SkipPads: true})
		if chip.Sticks == nil || chip.Netlist == nil || chip.Logic == nil ||
			chip.Text == "" || chip.Block == "" {
			b.Fatal("missing representation")
		}
		if _, err := chip.NewSim(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1Stretch measures Pass 1's stretch machinery: the uniform-pitch
// core assembly that replaces hand routing channels.
func BenchmarkA1Stretch(b *testing.B) {
	var channels float64
	for i := 0; i < b.N; i++ {
		chip := compileSuite(b, 4, &core.Options{SkipPads: true})
		channels = float64(baseline.Hand(chip).Channels)
	}
	b.ReportMetric(channels, "hand-channels")
	b.ReportMetric(0, "stretch-channels")
}

// BenchmarkA2RotoRouter measures Pass 3 with the rotation optimization and
// reports the wire-length ratio against the unrotated assignment.
func BenchmarkA2RotoRouter(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		chip := compileSuite(b, 2, nil)
		ratio = float64(chip.Ring.NaiveLen) / float64(chip.Ring.EstimatedLen)
	}
	b.ReportMetric(ratio, "naive/roto")
	if ratio < 1 {
		b.Fatalf("Roto-Router made things worse: %.2f", ratio)
	}
}

// BenchmarkA2RotoRouterOff is the ablation arm: rotation pinned to 0. The
// single-layer router cannot close the ring without the rotation step, so
// the interesting metric is routability (0), and the time is the cost of
// exhausting the retry ladder.
func BenchmarkA2RotoRouterOff(b *testing.B) {
	var routable float64
	for i := 0; i < b.N; i++ {
		_, err := core.Compile(experiments.SpecFor(experiments.Suite[2]),
			&core.Options{SkipRotoRouter: true})
		if err == nil {
			routable = 1
		}
	}
	b.ReportMetric(routable, "routable")
}

// BenchmarkA3DecoderOpt measures Pass 2 with the text-array optimizer and
// reports the PLA term reduction.
func BenchmarkA3DecoderOpt(b *testing.B) {
	var before, after float64
	for i := 0; i < b.N; i++ {
		chip, err := core.Compile(experiments.RedundantSpecFor(experiments.Suite[2]),
			&core.Options{SkipPads: true})
		if err != nil {
			b.Fatal(err)
		}
		before = float64(chip.Stats.DecoderOpt.TermsBefore)
		after = float64(chip.Stats.DecoderOpt.TermsAfter)
	}
	b.ReportMetric(before, "terms-raw")
	b.ReportMetric(after, "terms-opt")
	if after >= before {
		b.Fatal("optimizer had no effect")
	}
}

// BenchmarkA3DecoderOptOff is the ablation arm: optimizer disabled.
func BenchmarkA3DecoderOptOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(experiments.RedundantSpecFor(experiments.Suite[2]),
			&core.Options{SkipPads: true, SkipOptimize: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA4CondAssembly compiles the PROTOTYPE and production variants
// and reports the reclaimed area fraction.
func BenchmarkA4CondAssembly(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		spec := experiments.SpecFor(experiments.Suite[1])
		spec.Elements[0].OnlyIf = "PROTOTYPE"
		spec.Globals = map[string]bool{"PROTOTYPE": true}
		proto, err := core.Compile(spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		spec2 := experiments.SpecFor(experiments.Suite[1])
		spec2.Elements[0].OnlyIf = "PROTOTYPE"
		spec2.Globals = map[string]bool{"PROTOTYPE": false}
		prod, err := core.Compile(spec2, nil)
		if err != nil {
			b.Fatal(err)
		}
		saved = 1 - float64(prod.Stats.ChipBounds.Area())/float64(proto.Stats.ChipBounds.Area())
	}
	b.ReportMetric(saved*100, "%area-reclaimed")
}

// BenchmarkA5Variants compiles the all-ones and mixed-value constant chips
// and reports the column width saved by variant selection.
func BenchmarkA5Variants(b *testing.B) {
	widthOf := func(value string) float64 {
		spec := experiments.SpecFor(experiments.Suite[1])
		spec.Elements[4].Params["value"] = value
		chip, err := core.Compile(spec, &core.Options{SkipPads: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, col := range chip.Columns() {
			if col.Name == "k1" {
				return float64(col.Width) / 4
			}
		}
		b.Fatal("constant column not found")
		return 0
	}
	var narrow, wide float64
	for i := 0; i < b.N; i++ {
		narrow = widthOf("15") // all ones
		wide = widthOf("9")    // mixed
	}
	b.ReportMetric(narrow, "λ-all-ones")
	b.ReportMetric(wide, "λ-mixed")
}

// benchCorePass runs Pass 1 alone over every spec in examples/chips plus
// the two largest suite chips (the examples are paper-scale; the suite
// chips give the fan-out enough columns to chew on), at the given pool
// width.
func benchCorePass(b *testing.B, parallelism int) {
	b.Helper()
	var specs []*core.Spec
	for _, spec := range chipsSpecs(b) {
		specs = append(specs, spec)
	}
	specs = append(specs, experiments.SpecFor(experiments.Suite[4]), experiments.SpecFor(experiments.Suite[5]))
	opts := &core.Options{Parallelism: parallelism}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			if _, err := core.CoreOnly(ctx, spec, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCorePassSerial is the baseline arm: Pass 1 with the fan-out
// pinned to one worker.
func BenchmarkCorePassSerial(b *testing.B) { benchCorePass(b, 1) }

// BenchmarkCorePassParallel is the tentpole's headline number: Pass 1 on a
// GOMAXPROCS-wide pool. Compare against BenchmarkCorePassSerial — on a
// multi-core machine the fan-out (element generation) and fan-in (cell
// stretching) stages scale with cores, and the ratio is the speedup.
func BenchmarkCorePassParallel(b *testing.B) { benchCorePass(b, 0) }

// benchRoutePass compiles every spec in examples/chips end-to-end at the
// given pool width and reports the summed Pass 3 wall-clock as the
// "pads-ms" metric (time/op includes Passes 1-2, so the metric is the
// number to compare). seed selects the seed router configuration — Lee
// wavefront, pure serial commit — as the baseline arm.
func benchRoutePass(b *testing.B, parallelism int, seed bool) {
	b.Helper()
	if seed {
		pads.SetSeedMode(true)
		defer pads.SetSeedMode(false)
	}
	specs := chipsSpecs(b)
	opts := &core.Options{Parallelism: parallelism, SkipExtraReps: true}
	var padsUS int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		padsUS = 0
		for _, spec := range specs {
			chip, err := core.Compile(spec, opts)
			if err != nil {
				b.Fatal(err)
			}
			padsUS += chip.Times.Pads.Microseconds()
		}
	}
	b.ReportMetric(float64(padsUS)/1e3, "pads-ms")
}

// BenchmarkRouteSeed is the pre-A* baseline: Lee search, serial commit.
func BenchmarkRouteSeed(b *testing.B) { benchRoutePass(b, 1, true) }

// BenchmarkRouteSerial is Pass 3 with A* and the speculative pipeline
// drained by a single worker.
func BenchmarkRouteSerial(b *testing.B) { benchRoutePass(b, 1, false) }

// BenchmarkRouteParallel is the tentpole arm: A* routing with speculative
// net fan-out on a GOMAXPROCS-wide pool. Compare pads-ms against
// BenchmarkRouteSeed for the Pass 3 speedup.
func BenchmarkRouteParallel(b *testing.B) { benchRoutePass(b, 0, false) }

// BenchmarkRouteParallelJ8 pins the pool width to 8 regardless of the
// machine — the arm BENCH_PR5.json's pad_pass_speedup_j8 compares against
// the seed.
func BenchmarkRouteParallelJ8(b *testing.B) { benchRoutePass(b, 8, false) }

// BenchmarkCompileCachedHit is the serving path's hot case: the
// CompileLarge spec re-requested through a warm content-addressed cache.
// Compare with BenchmarkCompileLarge for the hit/miss ratio the daemon
// banks on (the acceptance bar is >= 10x).
func BenchmarkCompileCachedHit(b *testing.B) {
	c, err := cache.New(0, "")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	spec := experiments.SpecFor(experiments.Suite[4])
	if _, _, err := c.Compile(ctx, spec, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, cached, err := c.Compile(ctx, spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !cached || len(res.CIF) == 0 {
			b.Fatal("cache miss on the warm path")
		}
	}
}

// BenchmarkServerThroughput drives an in-process compile daemon with
// parallel clients re-posting the same description: the millions-of-users
// shape, where almost every request is a cache hit served without a
// worker slot.
func BenchmarkServerThroughput(b *testing.B) {
	s, err := server.New(server.Config{QueueDepth: 256})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Shutdown(context.Background())
	}()
	spec := bristleblocks.FormatSpec(experiments.SpecFor(experiments.Suite[1]))
	// Prime the cache so the measured loop is the serving path, not the
	// first cold compile.
	resp, err := http.Post(ts.URL+"/compile", "text/plain", strings.NewReader(spec))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/compile", "text/plain", strings.NewReader(spec))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}

// BenchmarkDRCFullChip measures the design-rule checker over a complete
// chip (core, decoder, pad ring) — the verification a user runs per cycle.
func BenchmarkDRCFullChip(b *testing.B) {
	chip := compileSuite(b, 2, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := bristleblocks.CheckDRC(chip); len(vs) != 0 {
			b.Fatal(vs[0])
		}
	}
}

// BenchmarkExtractFullChip measures netlist extraction over a complete
// chip: the independent Layout -> Transistors derivation.
func BenchmarkExtractFullChip(b *testing.B) {
	chip := compileSuite(b, 2, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bristleblocks.ExtractNetlist(chip); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimFibonacci runs the microprocessor example's Fibonacci program
// on a compiled chip's simulation representation.
func BenchmarkSimFibonacci(b *testing.B) {
	spec := experiments.SpecFor(experiments.Suite[2])
	chip, err := core.Compile(spec, &core.Options{SkipPads: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine, err := chip.NewSim()
		if err != nil {
			b.Fatal(err)
		}
		program := make([]uint64, 64)
		for j := range program {
			program[j] = uint64(2 | (j%3)<<4) // exercise register loads
		}
		machine.Run(program)
	}
}
