package bristleblocks_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bristleblocks"
	"bristleblocks/internal/scenario"
)

// Scenario golden tests: every .sv file under examples/scenarios grades
// against its chip and the full verdict list must match the checked-in
// golden under testdata/golden/scenarios/<name>.json. On top of the
// byte-level pin, every example scenario must grade 100% functional —
// the examples are the documentation of a working chip, so a failing
// vector there is a compiler regression, not a golden drift.
//
// Regenerate after an intentional change with:
//
//	go test -run TestGoldenScenarios -update

func compileExample(t *testing.T, name string) *bristleblocks.Chip {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("examples", "chips", name+".bb"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := bristleblocks.ParseSpec(string(src))
	if err != nil {
		t.Fatal(err)
	}
	chip, err := bristleblocks.Compile(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func TestGoldenScenarios(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "scenarios", "*.sv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example scenarios found: %v", err)
	}
	for _, path := range files {
		name := strings.TrimSuffix(filepath.Base(path), ".sv")
		t.Run(name, func(t *testing.T) {
			scs, err := scenario.ParseFile(path)
			if err != nil {
				t.Fatal(err)
			}
			chip := compileExample(t, name)
			verdicts := scenario.GradeAll(chip, scs)
			for _, v := range verdicts {
				if !v.Passed100() {
					t.Errorf("scenario %s did not grade 100%%: error=%q failures=%v (%d/%d)",
						v.Scenario, v.Error, v.Failures, v.Passed, v.Vectors)
				}
			}
			buf, err := json.MarshalIndent(verdicts, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "golden", "scenarios", name+".json")
			checkGolden(t, golden, string(buf)+"\n")
		})
	}
}
