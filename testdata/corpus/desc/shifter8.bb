# An 8-bit shifting datapath with a bus bridge and horizontal microcode.
chip shifter8
lambda 250

microcode width 8
field IO 0 1    ; I/O port connect
field LD 1 1    ; register load (bus A)
field RD 2 1    ; register drive (bus A)
field SL 3 1    ; shifter load (bus A)
field SR 4 1    ; shifter drive shifted word (bus B)
field X  5 1    ; bridge bus A <-> bus B

data width 8
bus A 0 -1
bus B 0 -1

element io ioport    io="IO" class=io
element r  registers ld="LD" rd="RD"
element sh shifter   ld="SL" rd="SR"
element x  xfer      x="X"
