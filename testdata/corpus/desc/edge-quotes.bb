# quoting, comments and conditionals in one spec
chip edge
lambda 300
microcode width 6
field OP 0 4     ; semicolon comment
field SEL 4 2
data width 2
bus A 0 1
bus B 2 -1
global PROTOTYPE true
global DEBUG false
element io ioport io="OP=1" class=io
element r registers count=3 ld="OP=2 & SEL={i}" rd="OP=3 & SEL={i}"
element dbg registers if=DEBUG ld="OP=11" rd="OP=12"
