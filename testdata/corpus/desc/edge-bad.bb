chip bad
data width 0
bus A 5 2
element nosuch mystery
