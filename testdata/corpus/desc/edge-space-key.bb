chip 00
microcode width 1
data width 1
element 00 registers " ="
