# A 4-bit accumulator chip with horizontal microcode: each control gets
# its own enable bit so several controls can fire in one word.
chip adder4
lambda 250

microcode width 10
field IO  0 1    ; I/O port connect
field LD  1 1    ; accumulator load
field RD  2 1    ; accumulator drive
field SEL 3 2    ; accumulator select
field LA  5 1    ; ALU latch operand a (bus A)
field LB  6 1    ; ALU latch operand b (bus B)
field AR  7 1    ; ALU drive result (bus A)
field K   8 1    ; constant 1 drive (bus A)
field X   9 1    ; bridge bus A <-> bus B

data width 4
bus A 0 -1
bus B 0 -1

element io  ioport    io="IO" class=io
element acc registers count=2 ld="LD & SEL={i}" rd="RD & SEL={i}"
element alu alu       lda="LA" ldb="LB" rd="AR" op=add
element k1  const     value=1 rd="K"
element x   xfer      x="X"
