chip tiny
microcode width 2
field OP 0 2
data width 1
bus A 0 -1
element io ioport io="OP=1" class=io
element r registers ld="OP=2" rd="OP=3"
