chip 0
microcode width 1
data width 1
element 0 registers 0"=#"
