package bristleblocks_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bristleblocks"
	"bristleblocks/internal/experiments"
)

// TestSpecRoundTrip pins ParseSpec → FormatSpec → ParseSpec as a fixed
// point for every shipped chip description. The compile cache keys on
// FormatSpec's output, so canonicality here is load-bearing: two
// descriptions of the same chip must hash identically.
func TestSpecRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "chips", "*.bb"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example chip descriptions found")
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := bristleblocks.ParseSpec(string(src))
			if err != nil {
				t.Fatalf("ParseSpec: %v", err)
			}
			text := bristleblocks.FormatSpec(spec)
			spec2, err := bristleblocks.ParseSpec(text)
			if err != nil {
				t.Fatalf("reparsing formatted spec: %v\n%s", err, text)
			}
			if !reflect.DeepEqual(spec, spec2) {
				t.Errorf("round trip changed the spec:\nfirst:  %+v\nsecond: %+v", spec, spec2)
			}
			// Formatting must itself be a fixed point, or cache keys drift
			// between a parsed-from-file spec and its reformatted twin.
			if text2 := bristleblocks.FormatSpec(spec2); text2 != text {
				t.Errorf("FormatSpec is not canonical:\n%q\nvs\n%q", text, text2)
			}
		})
	}
}

// TestSuiteSpecRoundTrip covers the programmatically built benchmark
// specs, which exercise bus lists and element parameters the example
// files may not.
func TestSuiteSpecRoundTrip(t *testing.T) {
	for _, sc := range experiments.Suite {
		t.Run(sc.Name, func(t *testing.T) {
			spec := experiments.SpecFor(sc)
			text := bristleblocks.FormatSpec(spec)
			spec2, err := bristleblocks.ParseSpec(text)
			if err != nil {
				t.Fatalf("reparsing formatted spec: %v\n%s", err, text)
			}
			if text2 := bristleblocks.FormatSpec(spec2); text2 != text {
				t.Errorf("FormatSpec is not canonical:\n%q\nvs\n%q", text, text2)
			}
		})
	}
}
